//! Differential suite: the CSR [`DistanceEngine`] substrate versus the
//! frozen pre-refactor implementations in [`bbc_core::reference`].
//!
//! On arbitrary games (uniform and weighted lengths/costs, sum and max
//! models) and arbitrary configurations, the engine must return
//!
//! * byte-identical `node_costs` and `social_cost`, and
//! * the same best-response *decision* ([`BestResponseOutcome`] up to its
//!   documented `evaluations` effort counter — see
//!   [`BestResponseOutcome::same_decision`])
//!
//! as the legacy adjacency-list path — including **after arbitrary rewiring
//! scripts**, which is what actually exercises the touched-set cache
//! invalidation (a stale row would surface here as a cost mismatch).

use bbc_core::{
    best_response, best_response_landmark, enumerate, reference, BestResponseOptions,
    BestResponseOutcome, ChurnConfig, ChurnSim, Configuration, CostModel, DistanceEngine, GameSpec,
    LandmarkOracle, LandmarkPolicy, NodeId, RowTier, Scheduler, StabilityChecker, Walk,
    WalkOutcome,
};
use proptest::prelude::*;

/// Arbitrary uniform game plus a seeded random configuration.
fn arb_uniform_instance() -> impl Strategy<Value = (GameSpec, Configuration)> {
    (2usize..=9, 1u64..=3, any::<u64>()).prop_map(|(n, k, seed)| {
        let spec = GameSpec::uniform(n, k);
        let cfg = Configuration::random(&spec, seed);
        (spec, cfg)
    })
}

/// Arbitrary weighted game (weights, lengths, costs, budgets, both cost
/// models) plus a random configuration.
fn arb_weighted_instance() -> impl Strategy<Value = (GameSpec, Configuration)> {
    (2usize..=7, any::<u64>()).prop_flat_map(|(n, seed)| {
        (
            proptest::collection::vec(0u64..=3, n * n),
            proptest::collection::vec(1u64..=5, n * n),
            proptest::collection::vec(1u64..=3, n * n),
            proptest::collection::vec(0u64..=4, n),
            proptest::bool::ANY,
        )
            .prop_map(move |(ws, ls, cs, bs, use_max)| {
                let mut b = GameSpec::builder(n);
                for u in 0..n {
                    for v in 0..n {
                        b = b
                            .weight(u, v, ws[u * n + v])
                            .link_length(u, v, ls[u * n + v])
                            .link_cost(u, v, cs[u * n + v]);
                    }
                    b = b.budget(u, bs[u]);
                }
                if use_max {
                    b = b.cost_model(CostModel::MaxDistance);
                }
                let spec = b.build().expect("valid spec");
                let cfg = Configuration::random(&spec, seed);
                (spec, cfg)
            })
    })
}

fn assert_same_decision(a: &BestResponseOutcome, b: &BestResponseOutcome, context: &str) {
    assert!(a.same_decision(b), "{context}: {a:?} vs {b:?}");
}

/// Compares every evaluator quantity and every node's best response between
/// the engine and the frozen reference, for the configuration bound to
/// `engine`.
fn assert_engine_matches_reference(
    spec: &GameSpec,
    engine: &mut DistanceEngine<'_>,
    context: &str,
) {
    let cfg = engine.config().clone();
    let options = BestResponseOptions::default();
    assert_eq!(
        engine.node_costs(),
        reference::node_costs(spec, &cfg),
        "{context}: node_costs"
    );
    assert_eq!(
        engine.social_cost(),
        reference::social_cost(spec, &cfg),
        "{context}: social_cost"
    );
    for u in NodeId::all(spec.node_count()) {
        let fast = engine.best_response(u, &options).expect("search fits");
        let frozen = reference::exact(spec, &cfg, u, &options).expect("search fits");
        assert_same_decision(&frozen, &fast, context);
        // The one-shot optimized path must agree bit for bit with the
        // engine (they share the search); both must not out-work the
        // reference.
        let one_shot = best_response::exact(spec, &cfg, u, &options).expect("search fits");
        assert_eq!(one_shot, fast, "{context}: engine vs one-shot");
        assert!(fast.evaluations <= frozen.evaluations, "{context}");
    }
}

proptest! {
    #[test]
    fn engine_matches_reference_on_uniform_games((spec, cfg) in arb_uniform_instance()) {
        let mut engine = DistanceEngine::new(&spec, cfg);
        assert_engine_matches_reference(&spec, &mut engine, "uniform");
    }

    #[test]
    fn engine_matches_reference_on_weighted_games((spec, cfg) in arb_weighted_instance()) {
        let mut engine = DistanceEngine::new(&spec, cfg);
        assert_engine_matches_reference(&spec, &mut engine, "weighted");
    }

    #[test]
    fn engine_matches_reference_across_rewiring_scripts(
        (spec, cfg) in arb_uniform_instance(),
        script in proptest::collection::vec((any::<u64>(), any::<u64>()), 1..12),
    ) {
        // Drive the engine through a random edit script; after each patch its
        // caches must be indistinguishable from a from-scratch evaluation.
        // This is the test that fails if touched-set invalidation misses a
        // dependent row.
        let mut engine = DistanceEngine::new(&spec, cfg);
        for (step, (node_sel, seed)) in script.into_iter().enumerate() {
            let u = NodeId::new((node_sel % spec.node_count() as u64) as usize);
            let replacement = Configuration::random(&spec, seed);
            engine
                .apply_strategy(u, replacement.strategy(u).to_vec())
                .expect("random strategies validate");
            assert_engine_matches_reference(&spec, &mut engine, &format!("after edit {step}"));
        }
    }

    #[test]
    fn engine_matches_reference_across_weighted_rewiring(
        (spec, cfg) in arb_weighted_instance(),
        script in proptest::collection::vec((any::<u64>(), any::<u64>()), 1..8),
    ) {
        let mut engine = DistanceEngine::new(&spec, cfg);
        for (step, (node_sel, seed)) in script.into_iter().enumerate() {
            let u = NodeId::new((node_sel % spec.node_count() as u64) as usize);
            let replacement = Configuration::random(&spec, seed);
            engine
                .apply_strategy(u, replacement.strategy(u).to_vec())
                .expect("random strategies validate");
            assert_engine_matches_reference(&spec, &mut engine, &format!("after edit {step}"));
        }
    }

    #[test]
    fn first_improvement_mode_agrees_with_reference((spec, cfg) in arb_uniform_instance()) {
        // The stability checker's mode: stop at the first improving
        // strategy. The seeded incumbent must report the same first
        // improvement (in DFS order) as the frozen search.
        let options = BestResponseOptions {
            stop_at_first_improvement: true,
            ..Default::default()
        };
        let mut engine = DistanceEngine::new(&spec, cfg.clone());
        for u in NodeId::all(spec.node_count()) {
            let fast = engine.best_response(u, &options).expect("search fits");
            let frozen = reference::exact(&spec, &cfg, u, &options).expect("search fits");
            assert_same_decision(&frozen, &fast, "first-improvement");
        }
    }

    #[test]
    fn walks_replay_identically_to_reference_steps(
        (spec, cfg) in arb_uniform_instance(),
    ) {
        // An engine-backed round-robin walk must produce exactly the move
        // sequence the frozen best response dictates.
        let mut walk = Walk::new(&spec, cfg.clone()).detect_cycles(false).record_trace(true);
        let outcome = walk.run(400).expect("walk fits");
        let mut replay = cfg;
        let options = BestResponseOptions::default();
        for mv in walk.trace() {
            // Fast-forward the replay to this trace entry by applying the
            // frozen best response for every scheduled node in between; the
            // recorded mover must be the next improving node.
            let frozen = reference::exact(&spec, &replay, mv.node, &options).expect("fits");
            prop_assert!(frozen.improves(), "trace recorded a non-improving move");
            prop_assert_eq!(&frozen.best_strategy, &mv.new_strategy);
            prop_assert_eq!(frozen.current_cost, mv.old_cost);
            prop_assert_eq!(frozen.best_cost, mv.new_cost);
            replay
                .set_strategy(&spec, mv.node, mv.new_strategy.clone())
                .expect("valid move");
        }
        prop_assert_eq!(&replay, walk.config(), "trace replay reproduces the final state");
        if let WalkOutcome::Equilibrium { .. } = outcome {
            prop_assert!(
                StabilityChecker::new(&spec).is_stable(walk.config()).expect("check fits")
            );
        }
    }
}

/// A small preference game: unit lengths/costs, budget 1, seeded weights —
/// the Theorem-1 shape whose joint space stays enumerable.
fn preference_spec(n: usize, weights: &[u64]) -> GameSpec {
    let mut b = GameSpec::builder(n).default_budget(1);
    for u in 0..n {
        for v in 0..n {
            if u != v {
                b = b.weight(u, v, weights[u * n + v]);
            }
        }
    }
    b.build().expect("preference game is valid")
}

/// Restricts each node's candidate list to a seeded non-empty prefix of the
/// full strategy set, so shard boundaries land in differently-shaped spaces.
fn restricted_space(spec: &GameSpec, keep: &[u64]) -> enumerate::ProfileSpace {
    let full = enumerate::ProfileSpace::full(spec, 10_000).expect("small space");
    let candidates: Vec<Vec<Vec<NodeId>>> = NodeId::all(spec.node_count())
        .map(|u| {
            let all = full.candidates(u);
            let take = 1 + (keep[u.index()] as usize) % all.len();
            all[..take].to_vec()
        })
        .collect();
    enumerate::ProfileSpace::from_candidates(spec, candidates).expect("prefixes stay valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sharded_enumeration_matches_sequential_on_uniform_games(
        n in 3usize..=4,
        keep in proptest::collection::vec(0u64..=255, 4),
        threads in 2usize..=8,
    ) {
        // Work-stealing sharding must return the same `EnumerationResult` —
        // equilibria in enumeration order AND profiles_checked — as the
        // sequential scan, for any worker count and any space shape.
        let spec = GameSpec::uniform(n, 1);
        let space = restricted_space(&spec, &keep);
        let seq = enumerate::find_equilibria(&spec, &space, 100_000).expect("scan fits");
        let par = enumerate::find_equilibria_parallel(&spec, &space, 100_000, threads)
            .expect("scan fits");
        prop_assert_eq!(par, seq);
    }

    #[test]
    fn sharded_enumeration_matches_sequential_on_preference_games(
        n in 3usize..=4,
        weights in proptest::collection::vec(0u64..=3, 16),
        keep in proptest::collection::vec(0u64..=255, 4),
        threads in 2usize..=8,
    ) {
        let spec = preference_spec(n, &weights);
        let space = restricted_space(&spec, &keep);
        let seq = enumerate::find_equilibria(&spec, &space, 100_000).expect("scan fits");
        let par = enumerate::find_equilibria_parallel(&spec, &space, 100_000, threads)
            .expect("scan fits");
        prop_assert_eq!(par, seq);
    }
}

/// Deterministic valid random strategy for `u` over the engine's *live*
/// targets: shuffle the affordable live pool, then greedily spend the
/// budget on a seeded prefix.
fn seeded_live_strategy(
    spec: &GameSpec,
    engine: &DistanceEngine<'_>,
    u: NodeId,
    seed: u64,
) -> Vec<NodeId> {
    use rand::{rngs::SmallRng, seq::SliceRandom, Rng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut pool: Vec<NodeId> = spec
        .affordable_targets(u)
        .into_iter()
        .filter(|&v| engine.is_live(v))
        .collect();
    pool.shuffle(&mut rng);
    let take = if pool.is_empty() {
        0
    } else {
        rng.gen_range(0..=pool.len())
    };
    let mut remaining = spec.budget(u);
    let mut picks = Vec::new();
    for v in pool.into_iter().take(take) {
        let c = spec.link_cost(u, v);
        if c <= remaining {
            remaining -= c;
            picks.push(v);
        }
    }
    picks.sort_unstable();
    picks
}

proptest! {
    #[test]
    fn greedy_never_beats_exact_on_nonuniform_games((spec, cfg) in arb_weighted_instance()) {
        // The heuristic's contract on arbitrary per-edge weights, link
        // costs and lengths (both cost models): it prices through the same
        // oracle as the exact search, never reports a cost below the true
        // optimum, and never reports one above the node's current cost.
        let options = BestResponseOptions::default();
        let mut engine = DistanceEngine::new(&spec, cfg.clone());
        for u in NodeId::all(spec.node_count()) {
            let g = best_response::greedy(&spec, &cfg, u);
            let e = best_response::exact(&spec, &cfg, u, &options).expect("search fits");
            prop_assert!(e.optimal, "exact search completed");
            prop_assert_eq!(g.current_cost, e.current_cost, "same oracle pricing for {}", u);
            prop_assert!(
                g.best_cost >= e.best_cost,
                "{}: greedy {} below exact optimum {}", u, g.best_cost, e.best_cost
            );
            prop_assert!(
                g.best_cost <= g.current_cost,
                "{}: greedy must never worsen the node", u
            );
            spec.validate_strategy(u, &g.best_strategy).expect("greedy strategy validates");
            // And the engine path agrees with the one-shot exact search.
            let fast = engine.best_response(u, &options).expect("search fits");
            assert_same_decision(&e, &fast, "greedy-vs-exact instance");
        }
    }

    #[test]
    fn churn_round_trips_are_byte_identical_to_fresh_builds(
        use_weighted in proptest::bool::ANY,
        uniform in arb_uniform_instance(),
        weighted in arb_weighted_instance(),
        script in proptest::collection::vec((any::<u64>(), any::<u64>(), any::<u64>()), 1..10),
    ) {
        let (spec, cfg) = if use_weighted { weighted } else { uniform };
        // Drive the engine through an interleaved rewire/leave/join script.
        // After every membership event the physical engine state must be
        // byte-identical to a fresh build of the same (config, membership)
        // — the churn determinism contract — and after *every* action the
        // masked costs and best responses must match the fresh build's.
        let options = BestResponseOptions::default();
        let mut engine = DistanceEngine::new(&spec, cfg);
        let n = spec.node_count();
        for (step, (action, node_sel, seed)) in script.into_iter().enumerate() {
            let churned = match action % 3 {
                0 => {
                    // Rewire a random live node.
                    let i = (node_sel % engine.live_count() as u64) as usize;
                    let u = engine.live_nodes().nth(i).expect("live index");
                    let s = seeded_live_strategy(&spec, &engine, u, seed);
                    engine.apply_strategy(u, s).expect("seeded strategy validates");
                    false
                }
                1 => {
                    // Depart a random live node (keep at least one).
                    if engine.live_count() <= 1 {
                        continue;
                    }
                    let i = (node_sel % engine.live_count() as u64) as usize;
                    let u = engine.live_nodes().nth(i).expect("live index");
                    engine.remove_node(u).expect("live node departs");
                    true
                }
                _ => {
                    // Re-admit a random departed node (if any) — including
                    // the remove-then-re-add-same-strategy round trip when
                    // the seeded draw reproduces the old links.
                    let dead: Vec<NodeId> =
                        NodeId::all(n).filter(|&u| !engine.is_live(u)).collect();
                    if dead.is_empty() {
                        continue;
                    }
                    let u = dead[(node_sel % dead.len() as u64) as usize];
                    let s = seeded_live_strategy(&spec, &engine, u, seed);
                    engine.add_node(u, s).expect("seeded join validates");
                    true
                }
            };

            let live = engine.live_set().clone();
            let mut fresh =
                DistanceEngine::with_membership(&spec, engine.config().clone(), &live)
                    .expect("engine state is always a valid membership");
            if churned {
                // Churn ops canonicalize the CSR: physical byte-identity.
                prop_assert_eq!(
                    engine.state_digest(),
                    fresh.state_digest(),
                    "step {}: churned engine diverged from fresh build", step
                );
            }
            for u in NodeId::all(n) {
                prop_assert_eq!(
                    engine.node_cost(u),
                    fresh.node_cost(u),
                    "step {}: cost of {} diverged", step, u
                );
            }
            for u in engine.live_nodes().collect::<Vec<_>>() {
                let warm = engine.best_response(u, &options).expect("search fits");
                let cold = fresh.best_response(u, &options).expect("search fits");
                prop_assert_eq!(warm, cold, "step {}: best response of {} diverged", step, u);
            }
        }
    }
}

// ===== cross-width differential: u32 tier vs u64 tier ===================
//
// The u32 row kernel's contract is byte-identity, not approximation: every
// cost, decision, digest, and walk trajectory must equal the u64 tier's.
// Aggregation totals accumulate in u64 on both tiers, so any divergence
// here means a narrow-word wrap or a traversal-order change — exactly the
// bugs this suite exists to catch.

/// Both tiers of an engine over the same instance; the small proptest
/// instances always fit u32 (`n ≤ 9`, penalty ≤ n·maxℓ+1 scale).
fn both_tiers<'a>(
    spec: &'a GameSpec,
    cfg: &Configuration,
) -> (DistanceEngine<'a>, DistanceEngine<'a>) {
    let narrow = DistanceEngine::with_tier(spec, cfg.clone(), RowTier::U32)
        .expect("proptest instances fit the u32 tier");
    let wide = DistanceEngine::with_tier(spec, cfg.clone(), RowTier::U64).expect("u64 always fits");
    (narrow, wide)
}

proptest! {
    #[test]
    fn u32_tier_matches_u64_on_uniform_games((spec, cfg) in arb_uniform_instance()) {
        let options = BestResponseOptions::default();
        let (mut narrow, mut wide) = both_tiers(&spec, &cfg);
        prop_assert_eq!(narrow.node_costs(), wide.node_costs());
        prop_assert_eq!(narrow.social_cost(), wide.social_cost());
        for u in NodeId::all(spec.node_count()) {
            let a = narrow.best_response(u, &options).expect("search fits");
            let b = wide.best_response(u, &options).expect("search fits");
            // Full equality, not just same_decision: the search prunes on
            // u64 totals on both tiers, so even `evaluations` must agree.
            prop_assert_eq!(a, b, "node {} diverged across tiers", u);
            prop_assert_eq!(narrow.distances_from(u), wide.distances_from(u));
        }
        prop_assert_eq!(narrow.state_digest(), wide.state_digest());
    }

    #[test]
    fn u32_tier_matches_u64_on_weighted_games((spec, cfg) in arb_weighted_instance()) {
        // Non-unit lengths exercise the clamped Dijkstra kernel (u64
        // relaxation, narrow storage).
        let options = BestResponseOptions::default();
        let (mut narrow, mut wide) = both_tiers(&spec, &cfg);
        prop_assert_eq!(narrow.node_costs(), wide.node_costs());
        for u in NodeId::all(spec.node_count()) {
            let a = narrow.best_response(u, &options).expect("search fits");
            let b = wide.best_response(u, &options).expect("search fits");
            prop_assert_eq!(a, b, "node {} diverged across tiers", u);
        }
        prop_assert_eq!(narrow.state_digest(), wide.state_digest());
    }

    #[test]
    fn u32_tier_matches_u64_across_rewiring_scripts(
        (spec, cfg) in arb_uniform_instance(),
        script in proptest::collection::vec((any::<u64>(), any::<u64>()), 1..10),
    ) {
        // Incremental invalidation must keep the tiers in lockstep, not
        // just fresh builds.
        let options = BestResponseOptions::default();
        let (mut narrow, mut wide) = both_tiers(&spec, &cfg);
        for (step, (node_sel, seed)) in script.into_iter().enumerate() {
            let u = NodeId::new((node_sel % spec.node_count() as u64) as usize);
            let replacement = Configuration::random(&spec, seed);
            narrow.apply_strategy(u, replacement.strategy(u).to_vec()).expect("valid");
            wide.apply_strategy(u, replacement.strategy(u).to_vec()).expect("valid");
            prop_assert_eq!(
                narrow.node_costs(),
                wide.node_costs(),
                "step {}: costs diverged", step
            );
            let a = narrow.best_response(u, &options).expect("search fits");
            let b = wide.best_response(u, &options).expect("search fits");
            prop_assert_eq!(a, b, "step {}: decision diverged", step);
        }
    }

    #[test]
    fn churn_scripts_preserve_tier_equality(
        (spec, cfg) in arb_uniform_instance(),
        script in proptest::collection::vec((any::<u64>(), any::<u64>(), any::<u64>()), 1..10),
    ) {
        // Leave/rejoin/rewire scripts drive both tiers through the same
        // membership history; the physical state digest must stay equal
        // after every event.
        let n = spec.node_count();
        let (mut narrow, mut wide) = both_tiers(&spec, &cfg);
        for (step, (action, node_sel, seed)) in script.into_iter().enumerate() {
            match action % 3 {
                0 => {
                    let i = (node_sel % narrow.live_count() as u64) as usize;
                    let u = narrow.live_nodes().nth(i).expect("live index");
                    let s = seeded_live_strategy(&spec, &narrow, u, seed);
                    narrow.apply_strategy(u, s.clone()).expect("valid");
                    wide.apply_strategy(u, s).expect("valid");
                }
                1 => {
                    if narrow.live_count() <= 1 {
                        continue;
                    }
                    let i = (node_sel % narrow.live_count() as u64) as usize;
                    let u = narrow.live_nodes().nth(i).expect("live index");
                    narrow.remove_node(u).expect("live node departs");
                    wide.remove_node(u).expect("live node departs");
                }
                _ => {
                    let dead: Vec<NodeId> =
                        NodeId::all(n).filter(|&u| !narrow.is_live(u)).collect();
                    if dead.is_empty() {
                        continue;
                    }
                    let u = dead[(node_sel % dead.len() as u64) as usize];
                    let s = seeded_live_strategy(&spec, &narrow, u, seed);
                    narrow.add_node(u, s.clone()).expect("valid join");
                    wide.add_node(u, s).expect("valid join");
                }
            }
            prop_assert_eq!(
                narrow.state_digest(),
                wide.state_digest(),
                "step {}: digests diverged", step
            );
            for u in NodeId::all(n) {
                prop_assert_eq!(
                    narrow.node_cost(u),
                    wide.node_cost(u),
                    "step {}: cost of {} diverged", step, u
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn walks_replay_identically_across_tiers(
        (spec, cfg) in arb_uniform_instance(),
        sched_sel in 0usize..3,
        rng_seed in any::<u64>(),
    ) {
        // Same scheduler, same instance, every prefill width: the u32 walk
        // must apply the identical move sequence and land in the identical
        // state as the u64 walk.
        let scheduler = match sched_sel {
            0 => Scheduler::RoundRobin,
            1 => Scheduler::MaxCostFirst,
            _ => Scheduler::Random { seed: rng_seed },
        };
        let mut runs = Vec::new();
        for tier in [RowTier::U32, RowTier::U64] {
            for threads in [1usize, 2, 4] {
                let mut walk = Walk::with_tier(&spec, cfg.clone(), tier)
                    .expect("proptest instances fit both tiers")
                    .with_scheduler(scheduler.clone())
                    .detect_cycles(false)
                    .record_trace(true)
                    .prefill_threads(threads);
                let outcome = walk.run(300).expect("walk fits");
                runs.push((
                    tier,
                    threads,
                    outcome,
                    walk.trace().to_vec(),
                    walk.state_digest(),
                    walk.into_config(),
                ));
            }
        }
        let (_, _, outcome0, trace0, digest0, config0) = runs[0].clone();
        for (tier, threads, outcome, trace, digest, config) in &runs[1..] {
            prop_assert_eq!(
                &outcome0, outcome,
                "outcome diverged on {:?} x {} threads", tier, threads
            );
            prop_assert_eq!(
                &trace0, trace,
                "trace diverged on {:?} x {} threads", tier, threads
            );
            prop_assert_eq!(
                digest0, *digest,
                "digest diverged on {:?} x {} threads", tier, threads
            );
            prop_assert_eq!(
                &config0, config,
                "final config diverged on {:?} x {} threads", tier, threads
            );
        }
    }
}

// ===== landmark bounds: soundness against the exact substrate ===========

proptest! {
    #[test]
    fn landmark_bounds_never_exceed_exact_distances(
        (spec, cfg) in arb_uniform_instance(),
        u_sel in any::<u64>(),
        count in 0usize..=6,
    ) {
        use bbc_graph::{BfsBuffer, UNREACHABLE};
        let n = spec.node_count();
        let u = NodeId::new((u_sel % n as u64) as usize);
        let lm = LandmarkOracle::build(&spec, &cfg, u, count);
        let mut g = cfg.to_graph(&spec);
        g.take_out_arcs(u.index());
        let mut bfs = BfsBuffer::new(n);
        for c in NodeId::all(n).filter(|&c| c != u) {
            bfs.run(&g, c.index());
            let dist = bfs.distances();
            for v in NodeId::all(n) {
                let exact = if dist[v.index()] == UNREACHABLE {
                    spec.penalty()
                } else {
                    dist[v.index()]
                };
                prop_assert!(
                    lm.lower_bound(c, v) <= exact,
                    "bound({}, {}) = {} above exact {}", c, v, lm.lower_bound(c, v), exact
                );
            }
        }
    }

    #[test]
    fn landmark_search_never_prunes_the_exact_winner(
        (spec, cfg) in arb_uniform_instance(),
        count in 0usize..=6,
    ) {
        // The admissibility claim, end to end: the landmark-pruned search
        // must report the frozen reference's decision for every node —
        // a pruned subtree containing the winner would surface here.
        let options = BestResponseOptions::default();
        for u in NodeId::all(spec.node_count()) {
            let frozen = reference::exact(&spec, &cfg, u, &options).expect("search fits");
            let lm = best_response_landmark(&spec, &cfg, u, &options, count)
                .expect("search fits");
            assert_same_decision(&frozen, &lm, "landmark");
        }
    }

    #[test]
    fn landmark_search_matches_exact_on_weighted_games(
        (spec, cfg) in arb_weighted_instance(),
        count in 0usize..=4,
    ) {
        let options = BestResponseOptions::default();
        for u in NodeId::all(spec.node_count()) {
            let exact = best_response::exact(&spec, &cfg, u, &options).expect("search fits");
            let lm = best_response_landmark(&spec, &cfg, u, &options, count)
                .expect("search fits");
            assert_same_decision(&exact, &lm, "landmark-weighted");
        }
    }

    #[test]
    fn stale_landmark_bounds_never_survive_churn_scripts(
        (spec, cfg) in arb_uniform_instance(),
        script in proptest::collection::vec((any::<u64>(), any::<u64>(), any::<u64>()), 1..10),
    ) {
        // The invalidation contract under fire: a warm Forced(4) engine
        // driven through an arbitrary rewire/leave/join script must answer
        // every live query with the decision a fresh engine (which cannot
        // hold a stale landmark row) computes. A bound that survived past
        // its invalidation event would over-prune and surface here.
        let options = BestResponseOptions::default();
        let n = spec.node_count();
        let mut engine =
            DistanceEngine::new(&spec, cfg).with_landmarks(LandmarkPolicy::Forced(4));
        for (step, (action, node_sel, seed)) in script.into_iter().enumerate() {
            match action % 3 {
                0 => {
                    let i = (node_sel % engine.live_count() as u64) as usize;
                    let u = engine.live_nodes().nth(i).expect("live index");
                    let s = seeded_live_strategy(&spec, &engine, u, seed);
                    engine.apply_strategy(u, s).expect("seeded strategy validates");
                }
                1 => {
                    if engine.live_count() <= 1 {
                        continue;
                    }
                    let i = (node_sel % engine.live_count() as u64) as usize;
                    let u = engine.live_nodes().nth(i).expect("live index");
                    engine.remove_node(u).expect("live node departs");
                }
                _ => {
                    let dead: Vec<NodeId> =
                        NodeId::all(n).filter(|&u| !engine.is_live(u)).collect();
                    if dead.is_empty() {
                        continue;
                    }
                    let u = dead[(node_sel % dead.len() as u64) as usize];
                    let s = seeded_live_strategy(&spec, &engine, u, seed);
                    engine.add_node(u, s).expect("seeded join validates");
                }
            }
            let live = engine.live_set().clone();
            let mut fresh =
                DistanceEngine::with_membership(&spec, engine.config().clone(), &live)
                    .expect("engine state is always a valid membership");
            for u in engine.live_nodes().collect::<Vec<_>>() {
                let warm = engine.best_response(u, &options).expect("search fits");
                let cold = fresh.best_response(u, &options).expect("search fits");
                prop_assert!(
                    warm.same_decision(&cold),
                    "step {}: {} diverged: {:?} vs {:?}", step, u, warm, cold
                );
                prop_assert_eq!(warm.best_cost, cold.best_cost, "step {}: {}", step, u);
                prop_assert_eq!(warm.current_cost, cold.current_cost, "step {}: {}", step, u);
            }
        }
    }
}

// ===== landmark bound cache: byte-identity on the default path ===========
//
// Proptest sizes (n ≤ 9) keep `LandmarkPolicy::Auto` on the exact path, so
// the default-on behaviour needs a deterministic instance above the n = 32
// threshold. The contract is the tentpole's: decisions, costs, trajectories
// and churn digests are invariant across Off/Auto/Forced and both row
// tiers — only effort counters move.

/// A 36-node circulant-ish start (`i → {i+1, i+6}`): big enough that
/// `Auto` resolves to 6 landmarks, small enough for debug-mode replays.
fn auto_scale_instance() -> (GameSpec, Configuration) {
    let n = 36;
    let spec = GameSpec::uniform(n, 2);
    let strategies: Vec<Vec<NodeId>> = (0..n)
        .map(|i| vec![NodeId::new((i + 1) % n), NodeId::new((i + 6) % n)])
        .collect();
    let cfg = Configuration::from_strategies(&spec, strategies).expect("circulant validates");
    (spec, cfg)
}

const POLICIES: [LandmarkPolicy; 3] = [
    LandmarkPolicy::Off,
    LandmarkPolicy::Auto,
    LandmarkPolicy::Forced(5),
];

#[test]
fn landmark_policies_never_change_walks_at_auto_scale() {
    let (spec, cfg) = auto_scale_instance();
    let mut runs = Vec::new();
    for tier in [RowTier::U32, RowTier::U64] {
        for policy in POLICIES {
            let mut walk = Walk::with_tier(&spec, cfg.clone(), tier)
                .expect("fits both tiers")
                .detect_cycles(false)
                .record_trace(true)
                .with_landmarks(policy);
            let outcome = walk.run(72).expect("walk fits");
            let lm_rows = walk.engine_stats().landmark_rows_computed;
            if policy == LandmarkPolicy::Off {
                assert_eq!(lm_rows, 0, "{tier:?}: Off must build nothing");
            } else {
                assert!(lm_rows > 0, "{tier:?}/{policy:?}: the bounded path ran");
            }
            runs.push((
                tier,
                policy,
                outcome,
                walk.trace().to_vec(),
                walk.stats().steps,
                walk.stats().moves,
                walk.into_config(),
            ));
        }
    }
    let (_, _, outcome0, trace0, steps0, moves0, config0) = runs[0].clone();
    for (tier, policy, outcome, trace, steps, moves, config) in &runs[1..] {
        assert_eq!(
            &outcome0, outcome,
            "outcome diverged on {tier:?}/{policy:?}"
        );
        assert_eq!(&trace0, trace, "trace diverged on {tier:?}/{policy:?}");
        assert_eq!(steps0, *steps, "steps diverged on {tier:?}/{policy:?}");
        assert_eq!(moves0, *moves, "moves diverged on {tier:?}/{policy:?}");
        assert_eq!(
            &config0, config,
            "final config diverged on {tier:?}/{policy:?}"
        );
    }
}

#[test]
fn landmark_policies_never_change_churn_digests() {
    let (spec, cfg) = auto_scale_instance();
    let churn_cfg = ChurnConfig {
        seed: 11,
        events: 5,
        min_live: 18,
        settle_steps: 36,
        leave_weight: 1,
        join_weight: 1,
        shock_weight: 0,
        prefill_threads: 1,
        scheduler: Scheduler::RoundRobin,
    };
    let reports: Vec<_> = POLICIES
        .iter()
        .map(|&policy| {
            ChurnSim::new(&spec, cfg.clone(), churn_cfg.clone())
                .with_landmarks(policy)
                .run()
                .expect("churn fits the search budget")
        })
        .collect();
    for (policy, report) in POLICIES.iter().zip(&reports[1..]) {
        assert_eq!(
            reports[0].trajectory_digest, report.trajectory_digest,
            "digest diverged under {policy:?}"
        );
        assert_eq!(&reports[0], report, "report diverged under {policy:?}");
    }
}

#[test]
fn landmark_decisions_match_exact_at_auto_scale() {
    // Full-equality spot check on the 36-node instance: every node's
    // pruned decision (u32 and u64 tiers, Auto and Forced) against the
    // one-shot exact search.
    let (spec, cfg) = auto_scale_instance();
    let options = BestResponseOptions::default();
    for tier in [RowTier::U32, RowTier::U64] {
        for policy in [LandmarkPolicy::Auto, LandmarkPolicy::Forced(5)] {
            let mut engine = DistanceEngine::with_tier(&spec, cfg.clone(), tier)
                .expect("fits both tiers")
                .with_landmarks(policy);
            for u in NodeId::all(spec.node_count()) {
                let pruned = engine.best_response(u, &options).expect("search fits");
                let exact = best_response::exact(&spec, &cfg, u, &options).expect("search fits");
                assert!(
                    pruned.same_decision(&exact),
                    "{tier:?}/{policy:?} node {u}: {pruned:?} vs {exact:?}"
                );
                assert_eq!(
                    pruned.best_cost, exact.best_cost,
                    "{tier:?}/{policy:?} node {u}"
                );
                assert_eq!(
                    pruned.current_cost, exact.current_cost,
                    "{tier:?}/{policy:?} node {u}"
                );
            }
        }
    }
}

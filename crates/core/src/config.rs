//! Strategy configurations: one strategy (set of bought links) per node.
//!
//! A [`Configuration`] is the joint strategy profile `S = {S_u}` of §2. The
//! network it forms, `G(S)`, is materialized on demand with
//! [`Configuration::to_graph`]. Configurations are `Eq + Hash` so the
//! dynamics engine can detect best-response cycles by exact state
//! comparison — no fingerprint collisions to reason about.

use rand::{rngs::SmallRng, seq::SliceRandom, Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use bbc_graph::{Arc, DiGraph};

use crate::{GameSpec, NodeId, Result};

/// A joint strategy profile: for each node, the sorted list of link targets
/// it buys.
///
/// # Examples
///
/// ```
/// use bbc_core::{Configuration, GameSpec, NodeId};
///
/// let spec = GameSpec::uniform(4, 1);
/// let mut c = Configuration::empty(4);
/// c.set_strategy(&spec, NodeId::new(0), vec![NodeId::new(1)])?;
/// assert!(c.has_link(NodeId::new(0), NodeId::new(1)));
/// assert_eq!(c.out_degree(NodeId::new(0)), 1);
/// # Ok::<(), bbc_core::Error>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Configuration {
    strategies: Vec<Vec<NodeId>>,
}

impl Configuration {
    /// The configuration in which nobody buys anything.
    pub fn empty(n: usize) -> Self {
        Self {
            strategies: vec![Vec::new(); n],
        }
    }

    /// Builds a configuration from per-node target lists, validating each
    /// strategy against `spec` and sorting it into canonical order.
    ///
    /// # Errors
    ///
    /// Returns the first strategy-validation failure (see
    /// [`GameSpec::validate_strategy`]), or a dimension mismatch if
    /// `lists.len() != spec.node_count()`.
    pub fn from_strategies(spec: &GameSpec, lists: Vec<Vec<NodeId>>) -> Result<Self> {
        if lists.len() != spec.node_count() {
            return Err(crate::Error::DimensionMismatch {
                expected: spec.node_count(),
                actual: lists.len(),
            });
        }
        let mut cfg = Self::empty(spec.node_count());
        for (u, targets) in lists.into_iter().enumerate() {
            cfg.set_strategy(spec, NodeId::new(u), targets)?;
        }
        Ok(cfg)
    }

    /// A seeded random configuration: every node spends its budget greedily
    /// on a random shuffle of its affordable targets.
    ///
    /// Deterministic for a given `(spec, seed)` pair.
    pub fn random(spec: &GameSpec, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = spec.node_count();
        let mut strategies = Vec::with_capacity(n);
        for u in NodeId::all(n) {
            let mut pool = spec.affordable_targets(u);
            pool.shuffle(&mut rng);
            let mut remaining = spec.budget(u);
            let mut picks = Vec::new();
            for v in pool {
                let c = spec.link_cost(u, v);
                if c <= remaining {
                    remaining -= c;
                    picks.push(v);
                }
            }
            picks.sort_unstable();
            strategies.push(picks);
        }
        Self { strategies }
    }

    /// A seeded random configuration where each node buys at most
    /// `max_links` links (useful for sparse starting points).
    pub fn random_sparse(spec: &GameSpec, seed: u64, max_links: usize) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = spec.node_count();
        let mut strategies = Vec::with_capacity(n);
        for u in NodeId::all(n) {
            let mut pool = spec.affordable_targets(u);
            pool.shuffle(&mut rng);
            let count = if pool.is_empty() {
                0
            } else {
                rng.gen_range(0..=max_links.min(pool.len()))
            };
            let mut remaining = spec.budget(u);
            let mut picks = Vec::new();
            for v in pool.into_iter().take(count) {
                let c = spec.link_cost(u, v);
                if c <= remaining {
                    remaining -= c;
                    picks.push(v);
                }
            }
            picks.sort_unstable();
            strategies.push(picks);
        }
        Self { strategies }
    }

    /// Number of players.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.strategies.len()
    }

    /// `u`'s current strategy (sorted target list).
    #[inline]
    pub fn strategy(&self, u: NodeId) -> &[NodeId] {
        &self.strategies[u.index()]
    }

    /// Replaces `u`'s strategy after validating it against `spec`. The list
    /// is sorted into canonical order.
    ///
    /// # Errors
    ///
    /// See [`GameSpec::validate_strategy`].
    pub fn set_strategy(
        &mut self,
        spec: &GameSpec,
        u: NodeId,
        mut targets: Vec<NodeId>,
    ) -> Result<()> {
        spec.validate_strategy(u, &targets)?;
        targets.sort_unstable();
        self.strategies[u.index()] = targets;
        Ok(())
    }

    /// `true` iff `u` currently buys the link `(u, v)`.
    pub fn has_link(&self, u: NodeId, v: NodeId) -> bool {
        self.strategies[u.index()].binary_search(&v).is_ok()
    }

    /// Out-degree of `u` (number of bought links).
    pub fn out_degree(&self, u: NodeId) -> usize {
        self.strategies[u.index()].len()
    }

    /// Total number of links in the profile.
    pub fn link_count(&self) -> usize {
        self.strategies.iter().map(Vec::len).sum()
    }

    /// Iterates over all links as `(buyer, target)` pairs.
    pub fn iter_links(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.strategies
            .iter()
            .enumerate()
            .flat_map(|(u, ts)| ts.iter().map(move |&v| (NodeId::new(u), v)))
    }

    /// Materializes the network `G(S)` with arc lengths from `spec`.
    pub fn to_graph(&self, spec: &GameSpec) -> DiGraph {
        let mut g = DiGraph::new(self.node_count());
        for (u, targets) in self.strategies.iter().enumerate() {
            let un = NodeId::new(u);
            for &v in targets {
                g.add_arc(u, Arc::new(v.index(), spec.link_length(un, v)));
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Error;

    fn v(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn empty_configuration_has_no_links() {
        let c = Configuration::empty(3);
        assert_eq!(c.link_count(), 0);
        assert_eq!(c.node_count(), 3);
        assert!(!c.has_link(v(0), v(1)));
    }

    #[test]
    fn set_strategy_sorts_canonically() {
        let spec = GameSpec::uniform(4, 3);
        let mut c = Configuration::empty(4);
        c.set_strategy(&spec, v(0), vec![v(3), v(1), v(2)]).unwrap();
        assert_eq!(c.strategy(v(0)), &[v(1), v(2), v(3)]);
    }

    #[test]
    fn equal_profiles_hash_equal_regardless_of_input_order() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let spec = GameSpec::uniform(4, 2);
        let mut a = Configuration::empty(4);
        a.set_strategy(&spec, v(0), vec![v(1), v(2)]).unwrap();
        let mut b = Configuration::empty(4);
        b.set_strategy(&spec, v(0), vec![v(2), v(1)]).unwrap();
        assert_eq!(a, b);
        let mut ha = DefaultHasher::new();
        let mut hb = DefaultHasher::new();
        a.hash(&mut ha);
        b.hash(&mut hb);
        assert_eq!(ha.finish(), hb.finish());
    }

    #[test]
    fn from_strategies_validates_dimensions() {
        let spec = GameSpec::uniform(3, 1);
        let err = Configuration::from_strategies(&spec, vec![vec![], vec![]]).unwrap_err();
        assert_eq!(
            err,
            Error::DimensionMismatch {
                expected: 3,
                actual: 2
            }
        );
    }

    #[test]
    fn from_strategies_validates_each_node() {
        let spec = GameSpec::uniform(3, 1);
        let err = Configuration::from_strategies(&spec, vec![vec![v(1), v(2)], vec![], vec![]])
            .unwrap_err();
        assert!(matches!(err, Error::BudgetExceeded { .. }));
    }

    #[test]
    fn random_is_deterministic_and_budget_respecting() {
        let spec = GameSpec::uniform(10, 3);
        let a = Configuration::random(&spec, 42);
        let b = Configuration::random(&spec, 42);
        assert_eq!(a, b);
        let c = Configuration::random(&spec, 43);
        assert_ne!(a, c, "different seeds should differ for n=10,k=3");
        for u in NodeId::all(10) {
            assert_eq!(a.out_degree(u), 3, "uniform game spends whole budget");
            assert!(spec.validate_strategy(u, a.strategy(u)).is_ok());
        }
    }

    #[test]
    fn random_respects_nonuniform_budgets() {
        let spec = GameSpec::builder(6)
            .default_budget(4)
            .link_cost(0, 1, 3)
            .link_cost(0, 2, 3)
            .budget(5, 0)
            .build()
            .unwrap();
        for seed in 0..20 {
            let c = Configuration::random(&spec, seed);
            for u in NodeId::all(6) {
                assert!(spec.validate_strategy(u, c.strategy(u)).is_ok());
            }
            assert_eq!(c.out_degree(v(5)), 0, "budget-0 node buys nothing");
        }
    }

    #[test]
    fn to_graph_uses_spec_lengths() {
        let spec = GameSpec::builder(3).link_length(0, 1, 7).build().unwrap();
        let mut c = Configuration::empty(3);
        c.set_strategy(&spec, v(0), vec![v(1)]).unwrap();
        c.set_strategy(&spec, v(1), vec![v(2)]).unwrap();
        let g = c.to_graph(&spec);
        assert_eq!(g.arc_count(), 2);
        assert_eq!(g.out_arcs(0)[0].len, 7);
        assert_eq!(g.out_arcs(1)[0].len, 1);
    }

    #[test]
    fn iter_links_yields_all_pairs() {
        let spec = GameSpec::uniform(3, 2);
        let mut c = Configuration::empty(3);
        c.set_strategy(&spec, v(0), vec![v(1), v(2)]).unwrap();
        c.set_strategy(&spec, v(2), vec![v(0)]).unwrap();
        let links: Vec<_> = c.iter_links().collect();
        assert_eq!(links, vec![(v(0), v(1)), (v(0), v(2)), (v(2), v(0))]);
    }
}

//! ALT-style landmark lower bounds for the deviation search.
//!
//! The exact deviation oracle ([`crate::DeviationOracle`]) prices a
//! candidate subset by running one shortest-path traversal per affordable
//! candidate — `m` traversals before the branch-and-bound search even
//! starts. Landmark bounds trade exactness in the *bound* for traversal
//! laziness: a small landmark set `L` yields the classic ALT lower bound
//!
//! ```text
//! d(c, v)  ≥  d(l, v) − d(l, c)      for every l ∈ L
//! ```
//!
//! (rearranged triangle inequality: any `l → v` path is at most the `l → c`
//! prefix plus a `c → v` path). These bounds replace the exact suffix-min
//! rows in the search's optimistic-completion prune; exact rows are
//! materialized lazily, only for candidates the search actually *includes*.
//! Bounds are admissible (never above the true clamped through-distance),
//! so the search records the identical incumbent sequence and returns the
//! same decision — only effort counters (`evaluations`, `bounds_hit`,
//! `rows_materialized`) may differ.
//!
//! Since the bound layer moved into the engine, the *default*
//! [`crate::DistanceEngine`] outcome path consults cached, touched-set
//! invalidated landmark rows whenever the [`LandmarkPolicy`] resolves to a
//! nonzero landmark count — walks, churn sims, and sweeps get the pruning
//! for free. [`LandmarkOracle`] remains as the frozen per-query reference
//! (rows in `G∖u`, rebuilt from scratch), pinned by the tests below;
//! [`best_response_landmark`] now routes through a fresh engine with
//! [`LandmarkPolicy::Forced`], so every caller exercises the cached path.

use bbc_graph::{BfsBuffer, DijkstraBuffer, UNREACHABLE};

use crate::best_response::{BestResponseOptions, BestResponseOutcome};
use crate::{Configuration, DistanceEngine, GameSpec, NodeId, Result};

/// How many cached landmark rows the engine's default best-response path
/// keeps (and therefore whether the landmark-bounded search runs at all).
///
/// The bounds are admissible, so the policy never changes a decision, cost,
/// walk trajectory, or stream digest — only effort counters
/// ([`crate::BestResponseOutcome::evaluations`],
/// [`crate::BestResponseOutcome::bounds_hit`],
/// [`crate::BestResponseOutcome::rows_materialized`], and the
/// [`crate::EngineStats`] traversal counts) vary with it. The differential
/// suite pins this byte-identity across `Off`/`Auto`/`Forced`.
///
/// # Examples
///
/// ```
/// use bbc_core::{
///     BestResponseOptions, Configuration, DistanceEngine, GameSpec, LandmarkPolicy, NodeId,
/// };
///
/// let spec = GameSpec::uniform(12, 2);
/// let cfg = Configuration::random(&spec, 7);
/// let options = BestResponseOptions::default();
/// let u = NodeId::new(0);
///
/// let exact = DistanceEngine::new(&spec, cfg.clone())
///     .with_landmarks(LandmarkPolicy::Off)
///     .best_response(u, &options)?;
/// let pruned = DistanceEngine::new(&spec, cfg)
///     .with_landmarks(LandmarkPolicy::Forced(4))
///     .best_response(u, &options)?;
/// // Identical decision; only effort counters may differ.
/// assert!(exact.same_decision(&pruned));
///
/// // Auto keeps small instances on the exact path (n = 12 < 32).
/// assert_eq!(LandmarkPolicy::Auto.resolve(12), 0);
/// // …and scales √n-ish with a measured cap beyond that.
/// assert_eq!(LandmarkPolicy::Auto.resolve(512), 22);
/// assert_eq!(LandmarkPolicy::Forced(40).resolve(512), 40);
/// # Ok::<(), bbc_core::Error>(())
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum LandmarkPolicy {
    /// Never run the landmark-bounded search (the pre-landmark engine
    /// behavior, byte-identical counters included).
    Off,
    /// Size the landmark set from the live node count: 0 below 32 live
    /// nodes (bound building would cost more than the tiny search it
    /// prunes — and the exact path's counters stay pinned for the small
    /// instances the unit suites replay), else `⌊√live⌋` clamped to
    /// `[4, 24]` (the measured knee: more landmarks sharpen bounds
    /// sub-linearly while each costs a full-graph traversal to refresh
    /// after an invalidation).
    #[default]
    Auto,
    /// Exactly `k` landmarks (capped at the live count), even on tiny
    /// instances. This is how tests force the landmark path where `Auto`
    /// would stay exact, and how sweeps pin a size across churn.
    Forced(usize),
}

impl LandmarkPolicy {
    /// The landmark count this policy resolves to at `live` live nodes;
    /// `0` means "run the exact path".
    pub fn resolve(self, live: usize) -> usize {
        match self {
            LandmarkPolicy::Off => 0,
            LandmarkPolicy::Auto => {
                if live < 32 {
                    0
                } else {
                    isqrt(live).clamp(4, 24)
                }
            }
            LandmarkPolicy::Forced(k) => k.min(live),
        }
    }
}

/// `⌊√n⌋` without floating-point edge cases.
fn isqrt(n: usize) -> usize {
    let mut s = (n as f64).sqrt() as usize;
    while (s + 1) * (s + 1) <= n {
        s += 1;
    }
    while s * s > n {
        s -= 1;
    }
    s
}

/// Per-deviating-node landmark distance rows in `G∖u`.
///
/// The frozen *reference* form of the landmark bound: built per query,
/// rows in `G∖u` with the [`UNREACHABLE`] sentinel preserved. The engine's
/// cached layer bounds through full-`G` rows instead (admissible because
/// `d_G ≤ d_{G∖u}`); this struct pins the sharper per-query semantics the
/// admissibility tests check against.
#[derive(Debug)]
pub struct LandmarkOracle<'a> {
    spec: &'a GameSpec,
    node: NodeId,
    landmarks: Vec<NodeId>,
    /// Raw `d_{G∖u}(l, ·)` rows, flattened with stride `n`
    /// ([`UNREACHABLE`] sentinel, *not* penalty-clamped).
    rows: Vec<u64>,
}

impl<'a> LandmarkOracle<'a> {
    /// Builds landmark rows for deviations of `u` under `config`: strips
    /// `u`'s out-links and runs one traversal per landmark.
    ///
    /// Landmarks are picked deterministically — up to `count` nodes evenly
    /// spaced over the id range, excluding `u` — so repeated builds of the
    /// same state bound identically.
    pub fn build(spec: &'a GameSpec, config: &Configuration, u: NodeId, count: usize) -> Self {
        let n = spec.node_count();
        let mut graph = config.to_graph(spec);
        graph.take_out_arcs(u.index());

        let pool: Vec<NodeId> = NodeId::all(n).filter(|&v| v != u).collect();
        let count = count.min(pool.len());
        let landmarks: Vec<NodeId> = (0..count)
            .map(|j| pool[j * pool.len() / count.max(1)])
            .collect();

        let mut rows = Vec::with_capacity(landmarks.len() * n);
        if spec.has_unit_lengths() {
            let mut bfs = BfsBuffer::new(n);
            for &l in &landmarks {
                bfs.run(&graph, l.index());
                rows.extend_from_slice(bfs.distances());
            }
        } else {
            let mut dij = DijkstraBuffer::new(n);
            for &l in &landmarks {
                dij.run(&graph, l.index());
                rows.extend_from_slice(dij.distances());
            }
        }

        Self {
            spec,
            node: u,
            landmarks,
            rows,
        }
    }

    /// The deviating node `u` (rows live in `G∖u`).
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The landmark set, in selection order.
    pub fn landmarks(&self) -> &[NodeId] {
        &self.landmarks
    }

    /// Lower bound on the penalty-clamped distance `d_{G∖u}(c, v)`:
    /// at most the exact clamped distance, exactly the penalty when some
    /// landmark proves `v` unreachable from `c`.
    pub fn lower_bound(&self, c: NodeId, v: NodeId) -> u64 {
        if c == v {
            return 0;
        }
        let n = self.spec.node_count();
        let m = self.spec.penalty();
        let mut best = 0u64;
        for k in 0..self.landmarks.len() {
            let row = &self.rows[k * n..(k + 1) * n];
            let lc = row[c.index()];
            if lc == UNREACHABLE {
                // The landmark sees neither endpoint's relation; no info.
                continue;
            }
            let lv = row[v.index()];
            if lv == UNREACHABLE {
                // l reaches c but not v, so no c → v path exists (it would
                // extend l → c into l → v).
                return m;
            }
            best = best.max(lv.saturating_sub(lc));
        }
        best.min(m)
    }
}

/// Exact best response for `u`, pruned by the engine's cached landmark
/// bound layer forced to `landmarks` rows ([`LandmarkPolicy::Forced`]).
///
/// Returns the identical decision to [`crate::best_response::exact`] —
/// same `best_strategy`, `best_cost`, `current_cost` — because the bounds
/// are admissible and the DFS visits candidates in the same order; only
/// the effort counters can differ. `landmarks = 0` degenerates to the
/// exact engine path.
///
/// One-shot convenience: builds a throwaway engine per call. Callers with
/// more than one query should hold a [`DistanceEngine`] and set
/// [`DistanceEngine::set_landmark_policy`] themselves — consecutive
/// queries then reuse the cached landmark rows instead of rebuilding them
/// (the regression test on the engine pins that reuse).
///
/// # Errors
///
/// [`crate::Error::SearchBudgetExceeded`] as in the exact search.
pub fn best_response_landmark(
    spec: &GameSpec,
    config: &Configuration,
    u: NodeId,
    options: &BestResponseOptions,
    landmarks: usize,
) -> Result<BestResponseOutcome> {
    DistanceEngine::new(spec, config.clone())
        .with_landmarks(LandmarkPolicy::Forced(landmarks))
        .best_response(u, options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::best_response;

    fn opts() -> BestResponseOptions {
        BestResponseOptions::default()
    }

    #[test]
    fn landmark_search_matches_exact_uniform() {
        let spec = GameSpec::uniform(9, 2);
        for seed in 0..6 {
            let cfg = Configuration::random(&spec, seed);
            for u in NodeId::all(9) {
                let ex = best_response::exact(&spec, &cfg, u, &opts()).unwrap();
                for k in [0, 1, 3, 8] {
                    let lm = best_response_landmark(&spec, &cfg, u, &opts(), k).unwrap();
                    assert!(
                        ex.same_decision(&lm),
                        "seed {seed} node {u} landmarks {k}: {ex:?} vs {lm:?}"
                    );
                    assert_eq!(ex.best_cost, lm.best_cost);
                    assert_eq!(ex.current_cost, lm.current_cost);
                }
            }
        }
    }

    #[test]
    fn auto_policy_schedule() {
        assert_eq!(LandmarkPolicy::Auto.resolve(2), 0);
        assert_eq!(LandmarkPolicy::Auto.resolve(31), 0);
        assert_eq!(LandmarkPolicy::Auto.resolve(32), 5);
        assert_eq!(LandmarkPolicy::Auto.resolve(64), 8);
        assert_eq!(LandmarkPolicy::Auto.resolve(100), 10);
        assert_eq!(LandmarkPolicy::Auto.resolve(1024), 24, "cap at 24");
        assert_eq!(LandmarkPolicy::Off.resolve(512), 0);
        assert_eq!(LandmarkPolicy::Forced(6).resolve(512), 6);
        assert_eq!(LandmarkPolicy::Forced(6).resolve(3), 3, "capped at live");
        assert_eq!(LandmarkPolicy::default(), LandmarkPolicy::Auto);
    }

    #[test]
    fn landmark_bounds_never_exceed_exact_distances() {
        let spec = GameSpec::uniform(10, 2);
        let cfg = Configuration::random(&spec, 7);
        let u = NodeId::new(3);
        let lm = LandmarkOracle::build(&spec, &cfg, u, 4);
        let mut g = cfg.to_graph(&spec);
        g.take_out_arcs(u.index());
        let mut bfs = BfsBuffer::new(10);
        for c in NodeId::all(10).filter(|&c| c != u) {
            bfs.run(&g, c.index());
            let dist = bfs.distances();
            for v in NodeId::all(10) {
                let exact = if dist[v.index()] == UNREACHABLE {
                    spec.penalty()
                } else {
                    dist[v.index()]
                };
                assert!(
                    lm.lower_bound(c, v) <= exact,
                    "bound({c},{v}) = {} above exact {exact}",
                    lm.lower_bound(c, v)
                );
            }
        }
    }
}

//! ALT-style landmark lower bounds for the deviation search.
//!
//! The exact deviation oracle ([`crate::DeviationOracle`]) prices a
//! candidate subset by running one shortest-path traversal per affordable
//! candidate — `m` traversals before the branch-and-bound search even
//! starts. This module trades exactness in the *bound* for traversal
//! laziness: a small landmark set `L` (each landmark costs one traversal in
//! `G∖u`) yields the classic ALT lower bound
//!
//! ```text
//! d_{G∖u}(c, v)  ≥  d_{G∖u}(l, v) − d_{G∖u}(l, c)      for every l ∈ L
//! ```
//!
//! (rearranged triangle inequality: any `l → v` path is at most the `l → c`
//! prefix plus a `c → v` path). When `l` reaches `c` but not `v`, `c`
//! cannot reach `v` either — the bound jumps to the disconnection penalty.
//! These bounds replace the exact suffix-min rows in the search's
//! optimistic-completion prune; exact rows are materialized lazily, only
//! for candidates the search actually *includes*. Bounds are admissible
//! (never above the true clamped through-distance), so the search explores
//! a superset of the exact search's nodes, records the identical incumbent
//! sequence, and returns the same decision — only `evaluations` grows.
//!
//! The oracle is a snapshot of one configuration: any strategy patch,
//! rewire, or membership change invalidates it wholesale (landmark rows are
//! whole-graph objects with no touched-set story). Callers rebuild per
//! deviation; the walk and experiment paths deliberately do not use this
//! module — it is an opt-in alternative for one-shot deviation queries on
//! large sparse instances.

use bbc_graph::{BfsBuffer, DijkstraBuffer, UNREACHABLE};

use crate::best_response::{weighted_targets_of, BestResponseOptions, BestResponseOutcome};
use crate::{Configuration, CostModel, Error, GameSpec, NodeId, Result};

/// Per-deviating-node landmark distance rows in `G∖u`.
///
/// Built by [`LandmarkOracle::build`]; consumed by
/// [`best_response_landmark`] and directly testable through
/// [`LandmarkOracle::lower_bound`].
#[derive(Debug)]
pub struct LandmarkOracle<'a> {
    spec: &'a GameSpec,
    node: NodeId,
    landmarks: Vec<NodeId>,
    /// Raw `d_{G∖u}(l, ·)` rows, flattened with stride `n`
    /// ([`UNREACHABLE`] sentinel, *not* penalty-clamped).
    rows: Vec<u64>,
}

impl<'a> LandmarkOracle<'a> {
    /// Builds landmark rows for deviations of `u` under `config`: strips
    /// `u`'s out-links and runs one traversal per landmark.
    ///
    /// Landmarks are picked deterministically — up to `count` nodes evenly
    /// spaced over the id range, excluding `u` — so repeated builds of the
    /// same state bound identically.
    pub fn build(spec: &'a GameSpec, config: &Configuration, u: NodeId, count: usize) -> Self {
        let n = spec.node_count();
        let mut graph = config.to_graph(spec);
        graph.take_out_arcs(u.index());

        let pool: Vec<NodeId> = NodeId::all(n).filter(|&v| v != u).collect();
        let count = count.min(pool.len());
        let landmarks: Vec<NodeId> = (0..count)
            .map(|j| pool[j * pool.len() / count.max(1)])
            .collect();

        let mut rows = Vec::with_capacity(landmarks.len() * n);
        if spec.has_unit_lengths() {
            let mut bfs = BfsBuffer::new(n);
            for &l in &landmarks {
                bfs.run(&graph, l.index());
                rows.extend_from_slice(bfs.distances());
            }
        } else {
            let mut dij = DijkstraBuffer::new(n);
            for &l in &landmarks {
                dij.run(&graph, l.index());
                rows.extend_from_slice(dij.distances());
            }
        }

        Self {
            spec,
            node: u,
            landmarks,
            rows,
        }
    }

    /// The deviating node `u` (rows live in `G∖u`).
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The landmark set, in selection order.
    pub fn landmarks(&self) -> &[NodeId] {
        &self.landmarks
    }

    /// Lower bound on the penalty-clamped distance `d_{G∖u}(c, v)`:
    /// at most the exact clamped distance, exactly the penalty when some
    /// landmark proves `v` unreachable from `c`.
    pub fn lower_bound(&self, c: NodeId, v: NodeId) -> u64 {
        if c == v {
            return 0;
        }
        let n = self.spec.node_count();
        let m = self.spec.penalty();
        let mut best = 0u64;
        for k in 0..self.landmarks.len() {
            let row = &self.rows[k * n..(k + 1) * n];
            let lc = row[c.index()];
            if lc == UNREACHABLE {
                // The landmark sees neither endpoint's relation; no info.
                continue;
            }
            let lv = row[v.index()];
            if lv == UNREACHABLE {
                // l reaches c but not v, so no c → v path exists (it would
                // extend l → c into l → v).
                return m;
            }
            best = best.max(lv.saturating_sub(lc));
        }
        best.min(m)
    }

    /// The clamped through-row bound for candidate `c`:
    /// `min(M, ℓ(u,c) + lower_bound(c, v))` for every `v`.
    fn through_bound_row(&self, c: NodeId, out: &mut Vec<u64>) {
        let n = self.spec.node_count();
        let m = self.spec.penalty();
        let link = self.spec.link_length(self.node, c);
        out.clear();
        out.extend(NodeId::all(n).map(|v| (link + self.lower_bound(c, v)).min(m)));
    }
}

/// Exact best response for `u`, pruned by landmark bounds instead of exact
/// suffix rows, with exact through-rows materialized lazily (one traversal
/// per candidate the search actually includes, plus the current strategy's
/// targets, plus `landmarks` traversals for the oracle itself).
///
/// Returns the identical decision to [`crate::best_response::exact`] —
/// same `best_strategy`, `best_cost`, `current_cost` — because the bounds
/// are admissible and the DFS visits candidates in the same order; only
/// `evaluations` can be larger (weaker prunes evaluate more subsets).
///
/// # Errors
///
/// [`Error::SearchBudgetExceeded`] as in the exact search.
pub fn best_response_landmark(
    spec: &GameSpec,
    config: &Configuration,
    u: NodeId,
    options: &BestResponseOptions,
    landmarks: usize,
) -> Result<BestResponseOutcome> {
    let n = spec.node_count();
    let oracle = LandmarkOracle::build(spec, config, u, landmarks);

    let candidates = spec.affordable_targets(u);
    let m = candidates.len();
    let prices: Vec<u64> = candidates.iter().map(|&c| spec.link_cost(u, c)).collect();
    let weighted = weighted_targets_of(spec, u);
    let penalty = spec.penalty();

    // Optimistic completion rows from the landmark bounds: suffix[i] =
    // elementwise min of the through-bound rows of candidates i..; suffix[m]
    // is all-penalty ("buy nothing more"). Entirely traversal-free.
    let mut suffix = vec![penalty; (m + 1) * n];
    let mut bound_row = Vec::with_capacity(n);
    for i in (0..m).rev() {
        oracle.through_bound_row(candidates[i], &mut bound_row);
        let (head, tail) = suffix.split_at_mut((i + 1) * n);
        for v in 0..n {
            head[i * n + v] = tail[v].min(bound_row[v]);
        }
    }
    let mut min_price_suffix = vec![u64::MAX; m + 1];
    for i in (0..m).rev() {
        min_price_suffix[i] = min_price_suffix[i + 1].min(prices[i]);
    }

    let mut search = LmSearch {
        spec,
        u,
        graph: {
            let mut g = config.to_graph(spec);
            g.take_out_arcs(u.index());
            g
        },
        bfs: BfsBuffer::new(n),
        dij: DijkstraBuffer::new(n),
        candidates: &candidates,
        prices: &prices,
        budget: spec.budget(u),
        weighted: &weighted,
        exact_rows: vec![None; m],
        suffix,
        min_price_suffix,
        levels: vec![penalty; (m + 1) * n],
        selection: Vec::new(),
        options,
        best_cost: 0,
        best_strategy: Vec::new(),
        evaluations: 0,
        current_cost: 0,
        done: false,
    };

    // Price the node's current strategy through exact rows (identical to
    // DeviationOracle::strategy_cost) to seed the incumbent.
    let mut current_row = vec![penalty; n];
    for &t in config.strategy(u) {
        let i = candidates
            .binary_search(&t)
            .unwrap_or_else(|_| panic!("{t} is not a candidate target of {u}"));
        let row = search.exact_row(i).to_vec();
        for (d, s) in current_row.iter_mut().zip(&row) {
            *d = (*d).min(*s);
        }
    }
    let current_cost = aggregate(spec, &weighted, &current_row);
    search.current_cost = current_cost;
    search.best_cost = current_cost.saturating_add(1);

    // The empty strategy is always feasible; evaluate it as the baseline.
    let empty_cost = aggregate(spec, &weighted, &search.levels[..n]);
    search.record(empty_cost)?;
    search.dfs(0, 0, 0)?;

    Ok(BestResponseOutcome {
        node: u,
        current_cost,
        best_cost: search.best_cost,
        best_strategy: search.best_strategy,
        evaluations: search.evaluations,
        optimal: !search.done,
    })
}

/// Cost of a clamped min-row under the spec's aggregation (value-identical
/// to the exact search's monomorphized aggregators).
fn aggregate(spec: &GameSpec, weighted: &[(u32, u64)], row: &[u64]) -> u64 {
    match spec.cost_model() {
        CostModel::SumDistance => weighted.iter().map(|&(v, w)| w * row[v as usize]).sum(),
        CostModel::MaxDistance => weighted
            .iter()
            .map(|&(v, w)| w * row[v as usize])
            .max()
            .unwrap_or(0),
    }
}

struct LmSearch<'s> {
    spec: &'s GameSpec,
    u: NodeId,
    graph: bbc_graph::DiGraph,
    bfs: BfsBuffer,
    dij: DijkstraBuffer,
    candidates: &'s [NodeId],
    prices: &'s [u64],
    budget: u64,
    weighted: &'s [(u32, u64)],
    /// Lazily materialized clamped through-rows, one slot per candidate.
    exact_rows: Vec<Option<Vec<u64>>>,
    /// Landmark-bound suffix-min rows, stride `n` (`m + 1` rows).
    suffix: Vec<u64>,
    min_price_suffix: Vec<u64>,
    /// Exact min-rows per DFS level, stride `n` (`m + 1` rows).
    levels: Vec<u64>,
    selection: Vec<usize>,
    options: &'s BestResponseOptions,
    best_cost: u64,
    best_strategy: Vec<NodeId>,
    evaluations: u64,
    current_cost: u64,
    done: bool,
}

impl LmSearch<'_> {
    /// The exact clamped through-row of candidate `i`, materializing it on
    /// first use (one traversal in `G∖u`).
    fn exact_row(&mut self, i: usize) -> &[u64] {
        if self.exact_rows[i].is_none() {
            let c = self.candidates[i];
            let link = self.spec.link_length(self.u, c);
            let m = self.spec.penalty();
            let dist = if self.spec.has_unit_lengths() {
                self.bfs.run(&self.graph, c.index());
                self.bfs.distances()
            } else {
                self.dij.run(&self.graph, c.index());
                self.dij.distances()
            };
            let row: Vec<u64> = dist
                .iter()
                .map(|&d| if d == UNREACHABLE { m } else { link + d })
                .collect();
            self.exact_rows[i] = Some(row);
        }
        self.exact_rows[i].as_deref().expect("row just filled")
    }

    fn record(&mut self, cost: u64) -> Result<()> {
        self.evaluations += 1;
        if self.evaluations > self.options.evaluation_limit {
            return Err(Error::SearchBudgetExceeded {
                limit: self.options.evaluation_limit,
            });
        }
        if cost < self.best_cost {
            self.best_cost = cost;
            self.best_strategy = self.selection.iter().map(|&i| self.candidates[i]).collect();
            self.best_strategy.sort_unstable();
            if self.options.stop_at_first_improvement && cost < self.current_cost {
                self.done = true;
            }
        }
        Ok(())
    }

    fn dfs(&mut self, i: usize, level: usize, spent: u64) -> Result<()> {
        if self.done || i == self.candidates.len() {
            return Ok(());
        }
        if spent.saturating_add(self.min_price_suffix[i]) > self.budget {
            return Ok(());
        }
        let n = self.spec.node_count();
        // Optimistic bound: current exact min-row completed by the landmark
        // suffix bound. Admissible (suffix ≤ exact completion elementwise),
        // so a prune here can never hide the exact search's winner.
        let bound = {
            let cur = &self.levels[level * n..(level + 1) * n];
            let sfx = &self.suffix[i * n..(i + 1) * n];
            match self.spec.cost_model() {
                CostModel::SumDistance => self
                    .weighted
                    .iter()
                    .map(|&(v, w)| w * cur[v as usize].min(sfx[v as usize]))
                    .sum(),
                CostModel::MaxDistance => self
                    .weighted
                    .iter()
                    .map(|&(v, w)| w * cur[v as usize].min(sfx[v as usize]))
                    .max()
                    .unwrap_or(0),
            }
        };
        if bound >= self.best_cost {
            return Ok(());
        }

        // Include candidate i if affordable.
        let price = self.prices[i];
        if spent + price <= self.budget {
            let row = self.exact_row(i).to_vec();
            let (cur, next) = self.levels.split_at_mut((level + 1) * n);
            for v in 0..n {
                next[v] = cur[level * n + v].min(row[v]);
            }
            let cost = aggregate(self.spec, self.weighted, &next[..n]);
            self.selection.push(i);
            self.record(cost)?;
            self.dfs(i + 1, level + 1, spent + price)?;
            self.selection.pop();
        }
        // Exclude candidate i.
        self.dfs(i + 1, level, spent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::best_response;

    fn opts() -> BestResponseOptions {
        BestResponseOptions::default()
    }

    #[test]
    fn landmark_search_matches_exact_uniform() {
        let spec = GameSpec::uniform(9, 2);
        for seed in 0..6 {
            let cfg = Configuration::random(&spec, seed);
            for u in NodeId::all(9) {
                let ex = best_response::exact(&spec, &cfg, u, &opts()).unwrap();
                for k in [0, 1, 3, 8] {
                    let lm = best_response_landmark(&spec, &cfg, u, &opts(), k).unwrap();
                    assert!(
                        ex.same_decision(&lm),
                        "seed {seed} node {u} landmarks {k}: {ex:?} vs {lm:?}"
                    );
                    assert_eq!(ex.best_cost, lm.best_cost);
                    assert_eq!(ex.current_cost, lm.current_cost);
                }
            }
        }
    }

    #[test]
    fn landmark_bounds_never_exceed_exact_distances() {
        let spec = GameSpec::uniform(10, 2);
        let cfg = Configuration::random(&spec, 7);
        let u = NodeId::new(3);
        let lm = LandmarkOracle::build(&spec, &cfg, u, 4);
        let mut g = cfg.to_graph(&spec);
        g.take_out_arcs(u.index());
        let mut bfs = BfsBuffer::new(10);
        for c in NodeId::all(10).filter(|&c| c != u) {
            bfs.run(&g, c.index());
            let dist = bfs.distances();
            for v in NodeId::all(10) {
                let exact = if dist[v.index()] == UNREACHABLE {
                    spec.penalty()
                } else {
                    dist[v.index()]
                };
                assert!(
                    lm.lower_bound(c, v) <= exact,
                    "bound({c},{v}) = {} above exact {exact}",
                    lm.lower_bound(c, v)
                );
            }
        }
    }
}

//! Single-node best response via the deviation oracle.
//!
//! The key structural fact (also behind Lemmas 3–5 of the paper): a shortest
//! path from `u` never revisits `u`, so with `u`'s out-links removed from the
//! graph (`G∖u`), the distance achieved by any strategy `S` is
//!
//! ```text
//! d_S(u, v) = min_{s ∈ S} ( ℓ(u,s) + d_{G∖u}(s, v) )
//! ```
//!
//! where `d_{G∖u}` is independent of `S`. One shortest-path run per candidate
//! target therefore prices *every* strategy, and best response reduces to an
//! asymmetric k-median-style subset search over precomputed rows. We solve it
//! exactly by branch-and-bound ([`exact`]) with an optimistic elementwise-min
//! bound, or approximately by greedy-plus-swaps ([`greedy`]) for instances
//! where the exact search is out of reach.

use bbc_graph::{BfsBuffer, DijkstraBuffer, UNREACHABLE};

use crate::{Configuration, CostModel, Error, GameSpec, NodeId, Result};

/// Tuning knobs for the exact best-response search.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BestResponseOptions {
    /// Maximum number of strategy-cost evaluations before the search aborts
    /// with [`Error::SearchBudgetExceeded`]. Each evaluated subset counts
    /// once.
    pub evaluation_limit: u64,
    /// Stop as soon as any strategy strictly cheaper than the node's current
    /// cost is found. The reported `best_*` fields then describe the first
    /// improvement, not the global optimum.
    pub stop_at_first_improvement: bool,
}

impl Default for BestResponseOptions {
    fn default() -> Self {
        Self {
            evaluation_limit: 20_000_000,
            stop_at_first_improvement: false,
        }
    }
}

/// Result of a best-response computation for one node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BestResponseOutcome {
    /// The deviating node.
    pub node: NodeId,
    /// Cost of the node's current strategy (computed through the same oracle
    /// as the alternatives, so comparisons are exact).
    pub current_cost: u64,
    /// Cost of the best strategy found.
    pub best_cost: u64,
    /// The best strategy found (sorted target list).
    pub best_strategy: Vec<NodeId>,
    /// Number of strategies whose cost was evaluated.
    pub evaluations: u64,
    /// `true` when the search provably examined the whole strategy space
    /// (no early exit): `best_cost` is then the node's exact optimum.
    pub optimal: bool,
}

impl BestResponseOutcome {
    /// `true` when the node can strictly lower its cost by switching.
    pub fn improves(&self) -> bool {
        self.best_cost < self.current_cost
    }
}

/// Precomputed per-candidate distance rows for one deviating node.
///
/// Exposes [`DeviationOracle::strategy_cost`] so tests and heuristics can
/// price arbitrary strategies in `O(|S|·n)` without touching the graph.
#[derive(Debug)]
pub struct DeviationOracle<'a> {
    spec: &'a GameSpec,
    node: NodeId,
    /// Candidate targets, ascending by id.
    candidates: Vec<NodeId>,
    /// `rows[i][v] = ℓ(u, c_i) + d_{G∖u}(c_i, v)`, `UNREACHABLE`-preserving.
    rows: Vec<Vec<u64>>,
    /// Link cost of each candidate.
    prices: Vec<u64>,
    /// `(v, w(u,v))` for positive-weight targets `v ≠ u`.
    weighted_targets: Vec<(u32, u64)>,
    budget: u64,
}

impl<'a> DeviationOracle<'a> {
    /// Builds the oracle for node `u` under `config`: strips `u`'s links and
    /// runs one shortest-path traversal per affordable candidate target.
    pub fn build(spec: &'a GameSpec, config: &Configuration, u: NodeId) -> Self {
        let n = spec.node_count();
        let mut graph = config.to_graph(spec);
        graph.take_out_arcs(u.index());

        let candidates = spec.affordable_targets(u);
        let mut rows = Vec::with_capacity(candidates.len());
        let mut prices = Vec::with_capacity(candidates.len());
        if spec.has_unit_lengths() {
            let mut bfs = BfsBuffer::new(n);
            for &c in &candidates {
                bfs.run(&graph, c.index());
                rows.push(through_row(bfs.distances(), spec.link_length(u, c)));
                prices.push(spec.link_cost(u, c));
            }
        } else {
            let mut dij = DijkstraBuffer::new(n);
            for &c in &candidates {
                dij.run(&graph, c.index());
                rows.push(through_row(dij.distances(), spec.link_length(u, c)));
                prices.push(spec.link_cost(u, c));
            }
        }

        let weighted_targets = NodeId::all(n)
            .filter(|&v| v != u)
            .filter_map(|v| {
                let w = spec.weight(u, v);
                (w > 0).then_some((v.index() as u32, w))
            })
            .collect();

        Self {
            spec,
            node: u,
            candidates,
            rows,
            prices,
            weighted_targets,
            budget: spec.budget(u),
        }
    }

    /// The deviating node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Candidate targets the node can afford individually.
    pub fn candidates(&self) -> &[NodeId] {
        &self.candidates
    }

    /// Cost the node would pay with strategy `targets`, priced through the
    /// oracle rows.
    ///
    /// # Panics
    ///
    /// Panics if some target is not an oracle candidate (i.e. not affordable
    /// or equal to the node itself).
    pub fn strategy_cost(&self, targets: &[NodeId]) -> u64 {
        let n = self.spec.node_count();
        let mut row = vec![UNREACHABLE; n];
        for &t in targets {
            let i = self
                .candidates
                .binary_search(&t)
                .unwrap_or_else(|_| panic!("{t} is not a candidate target of {}", self.node));
            min_into(&mut row, &self.rows[i]);
        }
        self.aggregate(&row)
    }

    /// Aggregates a distance row into a cost under the spec's model.
    fn aggregate(&self, row: &[u64]) -> u64 {
        let m = self.spec.penalty();
        match self.spec.cost_model() {
            CostModel::SumDistance => self
                .weighted_targets
                .iter()
                .map(|&(v, w)| {
                    let d = row[v as usize];
                    w * if d == UNREACHABLE { m } else { d }
                })
                .sum(),
            CostModel::MaxDistance => self
                .weighted_targets
                .iter()
                .map(|&(v, w)| {
                    let d = row[v as usize];
                    w * if d == UNREACHABLE { m } else { d }
                })
                .max()
                .unwrap_or(0),
        }
    }
}

/// `row[v] = link_len + d[v]`, preserving `UNREACHABLE`.
fn through_row(dist: &[u64], link_len: u64) -> Vec<u64> {
    dist.iter()
        .map(|&d| {
            if d == UNREACHABLE {
                UNREACHABLE
            } else {
                link_len + d
            }
        })
        .collect()
}

/// `dst[v] = min(dst[v], src[v])` elementwise.
fn min_into(dst: &mut [u64], src: &[u64]) {
    for (d, &s) in dst.iter_mut().zip(src) {
        if s < *d {
            *d = s;
        }
    }
}

/// Exact best response for node `u` under `config`.
///
/// Enumerates every budget-feasible strategy by branch-and-bound over the
/// oracle rows. Deterministic: with equal costs, the first strategy in the
/// search order (candidates ascending, include-before-exclude) wins.
///
/// # Errors
///
/// [`Error::SearchBudgetExceeded`] if more than
/// `options.evaluation_limit` strategies would need evaluating; fall back to
/// [`greedy`] in that case.
///
/// # Examples
///
/// ```
/// use bbc_core::{best_response, BestResponseOptions, Configuration, GameSpec, NodeId};
///
/// // Path 0->1->2 in a (3,1)-uniform game; node 2 is disconnected and its
/// // best response is to link back, say to node 0.
/// let spec = GameSpec::uniform(3, 1);
/// let cfg = Configuration::from_strategies(&spec, vec![
///     vec![NodeId::new(1)], vec![NodeId::new(2)], vec![],
/// ])?;
/// let out = best_response::exact(&spec, &cfg, NodeId::new(2), &BestResponseOptions::default())?;
/// assert!(out.improves());
/// assert_eq!(out.best_strategy, vec![NodeId::new(0)]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn exact(
    spec: &GameSpec,
    config: &Configuration,
    u: NodeId,
    options: &BestResponseOptions,
) -> Result<BestResponseOutcome> {
    let oracle = DeviationOracle::build(spec, config, u);
    exact_with_oracle(&oracle, config, options)
}

/// Exact best response reusing a prebuilt oracle.
pub fn exact_with_oracle(
    oracle: &DeviationOracle<'_>,
    config: &Configuration,
    options: &BestResponseOptions,
) -> Result<BestResponseOutcome> {
    let u = oracle.node();
    let current_cost = oracle.strategy_cost(config.strategy(u));
    let n = oracle.spec.node_count();
    let m = oracle.candidates.len();

    // Optimistic completion rows: suffix[i] = elementwise min of rows[i..].
    // suffix[m] is all-UNREACHABLE.
    let mut suffix = vec![vec![UNREACHABLE; n]; m + 1];
    for i in (0..m).rev() {
        let (head, tail) = suffix.split_at_mut(i + 1);
        head[i].copy_from_slice(&tail[0]);
        min_into(&mut head[i], &oracle.rows[i]);
    }

    let mut search = Search {
        oracle,
        options,
        suffix,
        levels: vec![vec![UNREACHABLE; n]; m + 1],
        selection: Vec::new(),
        best_cost: u64::MAX,
        best_strategy: Vec::new(),
        evaluations: 0,
        current_cost,
        done: false,
    };

    // The empty strategy is always feasible; evaluate it as the baseline.
    search.evaluate(0)?;
    search.dfs(0, 0, 0)?;

    Ok(BestResponseOutcome {
        node: u,
        current_cost,
        best_cost: search.best_cost,
        best_strategy: search.best_strategy,
        evaluations: search.evaluations,
        optimal: !search.done,
    })
}

struct Search<'o, 'a> {
    oracle: &'o DeviationOracle<'a>,
    options: &'o BestResponseOptions,
    suffix: Vec<Vec<u64>>,
    levels: Vec<Vec<u64>>,
    selection: Vec<usize>,
    best_cost: u64,
    best_strategy: Vec<NodeId>,
    evaluations: u64,
    current_cost: u64,
    /// Set when stop_at_first_improvement has triggered.
    done: bool,
}

impl Search<'_, '_> {
    /// Evaluates the selection whose min-row sits at `level`.
    fn evaluate(&mut self, level: usize) -> Result<()> {
        self.evaluations += 1;
        if self.evaluations > self.options.evaluation_limit {
            return Err(Error::SearchBudgetExceeded {
                limit: self.options.evaluation_limit,
            });
        }
        let cost = self.oracle.aggregate(&self.levels[level]);
        if cost < self.best_cost {
            self.best_cost = cost;
            self.best_strategy = self
                .selection
                .iter()
                .map(|&i| self.oracle.candidates[i])
                .collect();
            self.best_strategy.sort_unstable();
            if self.options.stop_at_first_improvement && cost < self.current_cost {
                self.done = true;
            }
        }
        Ok(())
    }

    fn dfs(&mut self, i: usize, level: usize, spent: u64) -> Result<()> {
        if self.done || i == self.oracle.candidates.len() {
            return Ok(());
        }
        // Optimistic bound: even taking every remaining candidate for free
        // cannot beat the incumbent -> prune.
        let bound = {
            let m = self.oracle.spec.penalty();
            let cur = &self.levels[level];
            let suf = &self.suffix[i];
            match self.oracle.spec.cost_model() {
                CostModel::SumDistance => self
                    .oracle
                    .weighted_targets
                    .iter()
                    .map(|&(v, w)| {
                        let d = cur[v as usize].min(suf[v as usize]);
                        w * if d == UNREACHABLE { m } else { d }
                    })
                    .sum(),
                CostModel::MaxDistance => self
                    .oracle
                    .weighted_targets
                    .iter()
                    .map(|&(v, w)| {
                        let d = cur[v as usize].min(suf[v as usize]);
                        w * if d == UNREACHABLE { m } else { d }
                    })
                    .max()
                    .unwrap_or(0),
            }
        };
        if bound >= self.best_cost {
            return Ok(());
        }

        // Include candidate i if affordable.
        let price = self.oracle.prices[i];
        if spent + price <= self.oracle.budget {
            let (cur_levels, next_levels) = self.levels.split_at_mut(level + 1);
            next_levels[0].copy_from_slice(&cur_levels[level]);
            min_into(&mut next_levels[0], &self.oracle.rows[i]);
            self.selection.push(i);
            self.evaluate(level + 1)?;
            self.dfs(i + 1, level + 1, spent + price)?;
            self.selection.pop();
        }
        // Exclude candidate i.
        self.dfs(i + 1, level, spent)
    }
}

/// Greedy-plus-swaps heuristic best response.
///
/// Builds a strategy by repeatedly adding the candidate with the largest
/// marginal cost reduction, then applies single-link swaps until no swap
/// improves. Always returns a strategy at least as good as the node's
/// current one *or* the node's current strategy itself; `optimal` is `false`
/// unless the strategy space was trivially small.
pub fn greedy(spec: &GameSpec, config: &Configuration, u: NodeId) -> BestResponseOutcome {
    let oracle = DeviationOracle::build(spec, config, u);
    greedy_with_oracle(&oracle, config)
}

/// Greedy heuristic reusing a prebuilt oracle.
pub fn greedy_with_oracle(
    oracle: &DeviationOracle<'_>,
    config: &Configuration,
) -> BestResponseOutcome {
    let u = oracle.node();
    let n = oracle.spec.node_count();
    let current_cost = oracle.strategy_cost(config.strategy(u));
    let mut evaluations = 0u64;

    let mut selected: Vec<usize> = Vec::new();
    let mut row = vec![UNREACHABLE; n];
    let mut spent = 0u64;

    // Greedy additions.
    loop {
        let mut best: Option<(u64, usize)> = None;
        for (i, r) in oracle.rows.iter().enumerate() {
            if selected.contains(&i) || spent + oracle.prices[i] > oracle.budget {
                continue;
            }
            let mut trial = row.clone();
            min_into(&mut trial, r);
            let cost = oracle.aggregate(&trial);
            evaluations += 1;
            if best.is_none_or(|(bc, _)| cost < bc) {
                best = Some((cost, i));
            }
        }
        let Some((cost, i)) = best else { break };
        // Adding a link can never increase cost (the min-row only shrinks),
        // so keep adding while budget lasts; stop when nothing is affordable.
        let _ = cost;
        min_into(&mut row, &oracle.rows[i]);
        spent += oracle.prices[i];
        selected.push(i);
    }

    // 1-swap local search.
    let mut improved = true;
    while improved {
        improved = false;
        let base_cost = oracle.aggregate(&row);
        'swaps: for si in 0..selected.len() {
            let out = selected[si];
            for (i, r) in oracle.rows.iter().enumerate() {
                if selected.contains(&i) {
                    continue;
                }
                if spent - oracle.prices[out] + oracle.prices[i] > oracle.budget {
                    continue;
                }
                // Rebuild the row without `out`, with `i`.
                let mut trial = vec![UNREACHABLE; n];
                for &sj in &selected {
                    if sj != out {
                        min_into(&mut trial, &oracle.rows[sj]);
                    }
                }
                min_into(&mut trial, r);
                let cost = oracle.aggregate(&trial);
                evaluations += 1;
                if cost < base_cost {
                    spent = spent - oracle.prices[out] + oracle.prices[i];
                    selected[si] = i;
                    row = trial;
                    improved = true;
                    break 'swaps;
                }
            }
        }
    }

    let best_cost = oracle.aggregate(&row);
    let mut best_strategy: Vec<NodeId> = selected.iter().map(|&i| oracle.candidates[i]).collect();
    best_strategy.sort_unstable();

    // Never report a "best" worse than what the node already has.
    if best_cost >= current_cost {
        return BestResponseOutcome {
            node: u,
            current_cost,
            best_cost: current_cost,
            best_strategy: config.strategy(u).to_vec(),
            evaluations,
            optimal: false,
        };
    }
    BestResponseOutcome {
        node: u,
        current_cost,
        best_cost,
        best_strategy,
        evaluations,
        optimal: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Configuration, Evaluator};

    fn v(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn opts() -> BestResponseOptions {
        BestResponseOptions::default()
    }

    /// Brute-force best response: evaluate every feasible subset through a
    /// full Evaluator re-evaluation.
    fn brute_force(spec: &GameSpec, config: &Configuration, u: NodeId) -> u64 {
        let mut eval = Evaluator::new(spec);
        let pool = spec.affordable_targets(u);
        let mut best = u64::MAX;
        for mask in 0u32..(1 << pool.len()) {
            let targets: Vec<NodeId> = pool
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, &t)| t)
                .collect();
            if spec.validate_strategy(u, &targets).is_err() {
                continue;
            }
            let mut trial = config.clone();
            trial.set_strategy(spec, u, targets).unwrap();
            best = best.min(eval.node_cost(&trial, u));
        }
        best
    }

    #[test]
    fn oracle_cost_matches_evaluator_on_current_strategy() {
        let spec = GameSpec::uniform(6, 2);
        for seed in 0..10 {
            let cfg = Configuration::random(&spec, seed);
            let mut eval = Evaluator::new(&spec);
            for u in NodeId::all(6) {
                let oracle = DeviationOracle::build(&spec, &cfg, u);
                assert_eq!(
                    oracle.strategy_cost(cfg.strategy(u)),
                    eval.node_cost(&cfg, u),
                    "seed {seed} node {u}"
                );
            }
        }
    }

    #[test]
    fn exact_matches_brute_force_uniform() {
        let spec = GameSpec::uniform(6, 2);
        for seed in 0..10 {
            let cfg = Configuration::random(&spec, seed);
            for u in NodeId::all(6) {
                let out = exact(&spec, &cfg, u, &opts()).unwrap();
                assert!(out.optimal);
                assert_eq!(
                    out.best_cost,
                    brute_force(&spec, &cfg, u),
                    "seed {seed} node {u}"
                );
            }
        }
    }

    #[test]
    fn exact_matches_brute_force_weighted() {
        let spec = GameSpec::builder(6)
            .default_budget(3)
            .weight(0, 3, 9)
            .weight(1, 4, 5)
            .link_length(0, 1, 4)
            .link_length(2, 3, 6)
            .link_cost(0, 2, 2)
            .build()
            .unwrap();
        for seed in 0..10 {
            let cfg = Configuration::random(&spec, seed);
            for u in NodeId::all(6) {
                let out = exact(&spec, &cfg, u, &opts()).unwrap();
                assert_eq!(
                    out.best_cost,
                    brute_force(&spec, &cfg, u),
                    "seed {seed} node {u}"
                );
            }
        }
    }

    #[test]
    fn exact_matches_brute_force_max_model() {
        let spec = GameSpec::uniform(6, 2).with_cost_model(CostModel::MaxDistance);
        for seed in 0..10 {
            let cfg = Configuration::random(&spec, seed);
            for u in NodeId::all(6) {
                let out = exact(&spec, &cfg, u, &opts()).unwrap();
                assert_eq!(
                    out.best_cost,
                    brute_force(&spec, &cfg, u),
                    "seed {seed} node {u}"
                );
            }
        }
    }

    #[test]
    fn best_strategy_actually_achieves_best_cost() {
        let spec = GameSpec::uniform(7, 2);
        let cfg = Configuration::random(&spec, 3);
        let mut eval = Evaluator::new(&spec);
        for u in NodeId::all(7) {
            let out = exact(&spec, &cfg, u, &opts()).unwrap();
            let mut applied = cfg.clone();
            applied
                .set_strategy(&spec, u, out.best_strategy.clone())
                .unwrap();
            assert_eq!(eval.node_cost(&applied, u), out.best_cost);
        }
    }

    #[test]
    fn applying_best_response_makes_node_stable() {
        let spec = GameSpec::uniform(7, 2);
        let mut cfg = Configuration::random(&spec, 9);
        let u = v(3);
        let out = exact(&spec, &cfg, u, &opts()).unwrap();
        cfg.set_strategy(&spec, u, out.best_strategy).unwrap();
        let again = exact(&spec, &cfg, u, &opts()).unwrap();
        assert!(
            !again.improves(),
            "best response must be a fixpoint for the mover"
        );
        assert_eq!(again.best_cost, out.best_cost);
    }

    #[test]
    fn evaluation_limit_is_enforced() {
        let spec = GameSpec::uniform(12, 4);
        let cfg = Configuration::random(&spec, 1);
        let tight = BestResponseOptions {
            evaluation_limit: 10,
            stop_at_first_improvement: false,
        };
        let err = exact(&spec, &cfg, v(0), &tight).unwrap_err();
        assert_eq!(err, Error::SearchBudgetExceeded { limit: 10 });
    }

    #[test]
    fn first_improvement_mode_stops_early() {
        let spec = GameSpec::uniform(10, 2);
        // Disconnected node: almost anything improves.
        let mut cfg = Configuration::random(&spec, 5);
        cfg.set_strategy(&spec, v(0), vec![]).unwrap();
        let first = BestResponseOptions {
            stop_at_first_improvement: true,
            ..opts()
        };
        let out = exact(&spec, &cfg, v(0), &first).unwrap();
        assert!(out.improves());
        assert!(!out.optimal, "early exit must not claim optimality");
        let full = exact(&spec, &cfg, v(0), &opts()).unwrap();
        assert!(out.evaluations <= full.evaluations);
    }

    #[test]
    fn greedy_never_worse_than_current() {
        let spec = GameSpec::uniform(9, 3);
        for seed in 0..10 {
            let cfg = Configuration::random(&spec, seed);
            for u in NodeId::all(9) {
                let out = greedy(&spec, &cfg, u);
                assert!(out.best_cost <= out.current_cost);
                assert!(spec.validate_strategy(u, &out.best_strategy).is_ok());
            }
        }
    }

    #[test]
    fn greedy_matches_exact_on_easy_instances() {
        // k=1: greedy with swaps is exact (single link, swaps scan all).
        let spec = GameSpec::uniform(8, 1);
        for seed in 0..10 {
            let cfg = Configuration::random(&spec, seed);
            for u in NodeId::all(8) {
                let g = greedy(&spec, &cfg, u);
                let e = exact(&spec, &cfg, u, &opts()).unwrap();
                assert_eq!(g.best_cost, e.best_cost, "seed {seed} node {u}");
            }
        }
    }

    #[test]
    fn zero_budget_node_best_response_is_empty() {
        let spec = GameSpec::builder(4).budget(0, 0).build().unwrap();
        let cfg = Configuration::empty(4);
        let out = exact(&spec, &cfg, v(0), &opts()).unwrap();
        assert!(out.best_strategy.is_empty());
        assert_eq!(out.best_cost, 3 * spec.penalty());
        assert!(!out.improves());
    }

    #[test]
    fn single_node_game() {
        let spec = GameSpec::uniform(1, 1);
        let cfg = Configuration::empty(1);
        let out = exact(&spec, &cfg, v(0), &opts()).unwrap();
        assert_eq!(out.best_cost, 0);
        assert!(out.best_strategy.is_empty());
    }

    #[test]
    fn nonuniform_link_costs_constrain_subsets() {
        // Node 0 can afford {1} or {2} or {3,4} (cost 2+2 > 3? no: 1+1=2 <= 3)
        // but not {1,2} (3+3=6 > 3).
        let spec = GameSpec::builder(5)
            .default_budget(3)
            .link_cost(0, 1, 3)
            .link_cost(0, 2, 3)
            .build()
            .unwrap();
        let cfg = Configuration::empty(5);
        let out = exact(&spec, &cfg, v(0), &opts()).unwrap();
        assert!(spec.strategy_cost(v(0), &out.best_strategy) <= 3);
        // Best is linking the two cheap targets 3,4 (2 reachable) over one
        // expensive target (1 reachable).
        assert_eq!(out.best_strategy, vec![v(3), v(4)]);
    }
}

//! Single-node best response via the deviation oracle.
//!
//! The key structural fact (also behind Lemmas 3–5 of the paper): a shortest
//! path from `u` never revisits `u`, so with `u`'s out-links removed from the
//! graph (`G∖u`), the distance achieved by any strategy `S` is
//!
//! ```text
//! d_S(u, v) = min_{s ∈ S} ( ℓ(u,s) + d_{G∖u}(s, v) )
//! ```
//!
//! where `d_{G∖u}` is independent of `S`. One shortest-path run per candidate
//! target therefore prices *every* strategy, and best response reduces to an
//! asymmetric k-median-style subset search over precomputed rows. We solve it
//! exactly by branch-and-bound ([`exact`]) with an optimistic elementwise-min
//! bound, or approximately by greedy-plus-swaps ([`greedy`]) for instances
//! where the exact search is out of reach.
//!
//! ## Row representation
//!
//! Oracle rows are stored *penalty-clamped*: the entry for an unreachable
//! target holds the disconnection penalty `M` instead of a sentinel. Because
//! every finite through-distance `ℓ(u,c) + d` is strictly below `M` (the spec
//! enforces `M > n·max ℓ`), clamping commutes with the elementwise `min` the
//! search is built on, and the branch-and-bound inner loops become branchless
//! sums over flat `u64` rows — the difference between ~300µs and ~40µs per
//! best-response step at `n = 24, k = 3`. The frozen pre-refactor
//! implementation lives in [`crate::reference`] and the differential suite
//! proves the two byte-identical.

use bbc_graph::{BfsBuffer, DijkstraBuffer, RowWord, UNREACHABLE};

use crate::{Configuration, CostModel, Error, GameSpec, NodeId, Result};

/// Tuning knobs for the exact best-response search.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BestResponseOptions {
    /// Maximum number of strategy-cost evaluations before the search aborts
    /// with [`Error::SearchBudgetExceeded`]. Each evaluated subset counts
    /// once.
    pub evaluation_limit: u64,
    /// Stop as soon as any strategy strictly cheaper than the node's current
    /// cost is found. The reported `best_*` fields then describe the first
    /// improvement, not the global optimum.
    pub stop_at_first_improvement: bool,
}

impl Default for BestResponseOptions {
    fn default() -> Self {
        Self {
            evaluation_limit: 20_000_000,
            stop_at_first_improvement: false,
        }
    }
}

/// Result of a best-response computation for one node.
///
/// Equality compares the game-theoretic fields plus `evaluations`;
/// the pruning-effort counters ([`BestResponseOutcome::bounds_hit`],
/// [`BestResponseOutcome::rows_materialized`]) are excluded — they describe
/// how a particular engine configuration (landmark policy, prefill, cache
/// warmth) reached the identical answer, not the answer itself.
#[derive(Clone, Debug)]
pub struct BestResponseOutcome {
    /// The deviating node.
    pub node: NodeId,
    /// Cost of the node's current strategy (computed through the same oracle
    /// as the alternatives, so comparisons are exact).
    pub current_cost: u64,
    /// Cost of the best strategy found.
    pub best_cost: u64,
    /// The best strategy found (sorted target list).
    pub best_strategy: Vec<NodeId>,
    /// Number of strategies whose cost was evaluated — an *effort* counter,
    /// not part of the game-theoretic result. It depends on how aggressively
    /// the search pruned (e.g. [`crate::reference::exact`] evaluates more
    /// subsets than the incumbent-seeded search here, and the landmark-bounded
    /// engine path prunes differently again, for identical
    /// `best_cost`/`best_strategy`), so only the other fields are pinned by
    /// the differential suite.
    pub evaluations: u64,
    /// `true` when the search provably examined the whole strategy space
    /// (no early exit): `best_cost` is then the node's exact optimum.
    pub optimal: bool,
    /// Subtrees cut by the cached landmark/block bound cascade (0 on the
    /// exact path). Effort counter; excluded from equality.
    pub bounds_hit: u64,
    /// Exact deviation rows computed on demand *during this call* (landmark
    /// path: rows the bound cascade failed to prove unnecessary; 0 when every
    /// needed row was already cached or prefilled). Effort counter; excluded
    /// from equality.
    pub rows_materialized: u64,
}

impl PartialEq for BestResponseOutcome {
    fn eq(&self, other: &Self) -> bool {
        self.node == other.node
            && self.current_cost == other.current_cost
            && self.best_cost == other.best_cost
            && self.best_strategy == other.best_strategy
            && self.evaluations == other.evaluations
            && self.optimal == other.optimal
    }
}

impl Eq for BestResponseOutcome {}

impl BestResponseOutcome {
    /// `true` when the node can strictly lower its cost by switching.
    pub fn improves(&self) -> bool {
        self.best_cost < self.current_cost
    }

    /// `true` when `other` reports the same game-theoretic result: same
    /// node, costs, strategy, and optimality claim. [`Self::evaluations`] is
    /// deliberately excluded — it measures search effort, which differs
    /// between the pruned search and [`crate::reference::exact`] while the
    /// decision itself is provably identical. This is the equality the
    /// differential suite pins.
    pub fn same_decision(&self, other: &Self) -> bool {
        self.node == other.node
            && self.current_cost == other.current_cost
            && self.best_cost == other.best_cost
            && self.best_strategy == other.best_strategy
            && self.optimal == other.optimal
    }
}

/// The strategy-independent inputs of one node's best-response search, with
/// rows in clamped flat form. Borrowed either from a [`DeviationOracle`]
/// (`W = u64`) or from the [`crate::DistanceEngine`] row cache, whose word
/// width follows the engine's row tier.
pub(crate) struct OracleView<'r, W = u64> {
    pub spec: &'r GameSpec,
    pub node: NodeId,
    /// Candidate targets, ascending by id.
    pub candidates: &'r [NodeId],
    /// Clamped through-rows, flattened: `rows[i*n + v] = ℓ(u, c_i) +
    /// d_{G∖u}(c_i, v)`, with `M` for unreachable `v`.
    pub rows: &'r [W],
    /// Link cost of each candidate.
    pub prices: &'r [u64],
    /// `(v, w(u,v))` for positive-weight targets `v ≠ u`. Under partial
    /// membership ([`crate::DistanceEngine`] churn), restricted to live
    /// targets.
    pub weighted_targets: &'r [(u32, u64)],
    pub budget: u64,
    /// `true` when every node of the game is a live member. Partial
    /// membership forces the weighted aggregation path even for uniform
    /// games — departed nodes must contribute neither distance terms nor
    /// disconnection penalties, which the plain row-sum cannot express.
    pub all_live: bool,
}

impl<W: RowWord> OracleView<'_, W> {
    #[inline]
    fn n(&self) -> usize {
        self.spec.node_count()
    }

    #[inline]
    fn row(&self, i: usize) -> &[W] {
        let n = self.n();
        &self.rows[i * n..(i + 1) * n]
    }

    /// `true` when costs collapse to a plain row sum minus the diagonal:
    /// unit weights everywhere, the sum-distance model, and full membership
    /// (a departed node's row entry must not enter any sum).
    #[inline]
    fn plain_sum(&self) -> bool {
        self.all_live && self.spec.is_uniform() && self.spec.cost_model() == CostModel::SumDistance
    }

    /// Aggregates a clamped distance row into a cost under the spec's model.
    pub(crate) fn aggregate(&self, row: &[W]) -> u64 {
        if self.plain_sum() {
            return row.iter().map(|d| d.widen()).sum::<u64>() - row[self.node.index()].widen();
        }
        match self.spec.cost_model() {
            CostModel::SumDistance => self
                .weighted_targets
                .iter()
                .map(|&(v, w)| w * row[v as usize].widen())
                .sum(),
            CostModel::MaxDistance => self
                .weighted_targets
                .iter()
                .map(|&(v, w)| w * row[v as usize].widen())
                .max()
                .unwrap_or(0),
        }
    }

    /// Aggregates the elementwise minimum of two clamped rows without
    /// materializing it (the branch-and-bound optimistic bound).
    pub(crate) fn aggregate_min(&self, a: &[W], b: &[W]) -> u64 {
        if self.plain_sum() {
            let total: u64 = a.iter().zip(b).map(|(&x, &y)| x.min(y).widen()).sum();
            let u = self.node.index();
            return total - a[u].min(b[u]).widen();
        }
        match self.spec.cost_model() {
            CostModel::SumDistance => self
                .weighted_targets
                .iter()
                .map(|&(v, w)| w * a[v as usize].min(b[v as usize]).widen())
                .sum(),
            CostModel::MaxDistance => self
                .weighted_targets
                .iter()
                .map(|&(v, w)| w * a[v as usize].min(b[v as usize]).widen())
                .max()
                .unwrap_or(0),
        }
    }
}

/// Precomputed per-candidate distance rows for one deviating node.
///
/// Exposes [`DeviationOracle::strategy_cost`] so tests and heuristics can
/// price arbitrary strategies in `O(|S|·n)` without touching the graph.
#[derive(Debug)]
pub struct DeviationOracle<'a> {
    spec: &'a GameSpec,
    node: NodeId,
    /// Candidate targets, ascending by id.
    candidates: Vec<NodeId>,
    /// Clamped through-rows, flattened with stride `n` (see [`OracleView`]).
    rows: Vec<u64>,
    /// Link cost of each candidate.
    prices: Vec<u64>,
    /// `(v, w(u,v))` for positive-weight targets `v ≠ u`.
    weighted_targets: Vec<(u32, u64)>,
    budget: u64,
}

impl<'a> DeviationOracle<'a> {
    /// Builds the oracle for node `u` under `config`: strips `u`'s links and
    /// runs one shortest-path traversal per affordable candidate target.
    pub fn build(spec: &'a GameSpec, config: &Configuration, u: NodeId) -> Self {
        let n = spec.node_count();
        let mut graph = config.to_graph(spec);
        graph.take_out_arcs(u.index());

        let candidates = spec.affordable_targets(u);
        let mut rows = Vec::with_capacity(candidates.len() * n);
        let mut prices = Vec::with_capacity(candidates.len());
        if spec.has_unit_lengths() {
            let mut bfs = BfsBuffer::new(n);
            for &c in &candidates {
                bfs.run(&graph, c.index());
                push_clamped_row(&mut rows, bfs.distances(), spec.link_length(u, c), spec);
                prices.push(spec.link_cost(u, c));
            }
        } else {
            let mut dij = DijkstraBuffer::new(n);
            for &c in &candidates {
                dij.run(&graph, c.index());
                push_clamped_row(&mut rows, dij.distances(), spec.link_length(u, c), spec);
                prices.push(spec.link_cost(u, c));
            }
        }

        Self {
            spec,
            node: u,
            candidates,
            rows,
            prices,
            weighted_targets: weighted_targets_of(spec, u),
            budget: spec.budget(u),
        }
    }

    /// The deviating node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Candidate targets the node can afford individually.
    pub fn candidates(&self) -> &[NodeId] {
        &self.candidates
    }

    pub(crate) fn view(&self) -> OracleView<'_> {
        OracleView {
            spec: self.spec,
            node: self.node,
            candidates: &self.candidates,
            rows: &self.rows,
            prices: &self.prices,
            weighted_targets: &self.weighted_targets,
            budget: self.budget,
            all_live: true,
        }
    }

    /// Cost the node would pay with strategy `targets`, priced through the
    /// oracle rows.
    ///
    /// # Panics
    ///
    /// Panics if some target is not an oracle candidate (i.e. not affordable
    /// or equal to the node itself).
    pub fn strategy_cost(&self, targets: &[NodeId]) -> u64 {
        let view = self.view();
        let n = self.spec.node_count();
        let mut row = vec![self.spec.penalty(); n];
        for &t in targets {
            let i = self
                .candidates
                .binary_search(&t)
                // bbc-lint: allow(panic, documented # Panics contract: callers must pass candidate targets)
                .unwrap_or_else(|_| panic!("{t} is not a candidate target of {}", self.node));
            min_into(&mut row, view.row(i));
        }
        view.aggregate(&row)
    }
}

/// `(v, w(u,v))` for positive-weight targets `v ≠ u`.
pub(crate) fn weighted_targets_of(spec: &GameSpec, u: NodeId) -> Vec<(u32, u64)> {
    NodeId::all(spec.node_count())
        .filter(|&v| v != u)
        .filter_map(|v| {
            let w = spec.weight(u, v);
            // bbc-lint: allow(narrowing-cast, node ids are < n <= u32::MAX per GameSpec validation)
            (w > 0).then_some((v.index() as u32, w))
        })
        .collect()
}

/// Appends the clamped through-row `min(ℓ + d, M-for-unreachable)` to `out`.
pub(crate) fn push_clamped_row(out: &mut Vec<u64>, dist: &[u64], link_len: u64, spec: &GameSpec) {
    let m = spec.penalty();
    out.extend(dist.iter().map(|&d| {
        if d == UNREACHABLE {
            m
        } else {
            debug_assert!(link_len + d < m, "finite distance at or above penalty");
            link_len + d
        }
    }));
}

/// `dst[v] = min(dst[v], src[v])` elementwise.
#[inline]
pub(crate) fn min_into<W: RowWord>(dst: &mut [W], src: &[W]) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = (*d).min(s);
    }
}

/// `dst[v] = min(a[v], b[v])` elementwise (fused copy+min).
#[inline]
fn copy_min<W: RowWord>(dst: &mut [W], a: &[W], b: &[W]) {
    for ((d, &x), &y) in dst.iter_mut().zip(a).zip(b) {
        *d = x.min(y);
    }
}

/// Cost aggregation, monomorphized per game shape *and* per row word so the
/// branch-and-bound inner loops compile to tight branch-free passes (the
/// generic dispatch in [`OracleView::aggregate`] costs more than the
/// arithmetic at `n ≈ 24`). Minima run at the row width `W`; every running
/// total widens each term into `u64` first ([`RowWord::widen`] is free for
/// `u64` and a zero-extension the vectorizer folds into the add for `u32`),
/// so both widths compute bit-identical costs and bounds.
trait Aggregate<W: RowWord> {
    /// Cost of a clamped row.
    fn row(&self, row: &[W]) -> u64;
    /// Cost of `min(a, b)` elementwise, without materializing it, used only
    /// as a prune bound: once the running value is provably `≥ cutoff` the
    /// implementation may bail out and return any value `≥ cutoff`.
    fn min2(&self, a: &[W], b: &[W], cutoff: u64) -> u64;
    /// `dst = min(a, b)` elementwise, returning the cost of `dst`.
    fn copy_min2(&self, dst: &mut [W], a: &[W], b: &[W]) -> u64;
    /// Upper bound on `min2(a, b, ·)`'s non-bailout value over **every**
    /// possible `a`: a level-independent ceiling on what the prune bound
    /// against `b` can reach. The landmark search gates its per-node `min2`
    /// pass on this (`ceiling < incumbent` ⇒ the bound cannot prune, skip
    /// it). The default — the plain cost of `b` — is valid for any
    /// implementation whose bound only shrinks as `a` shrinks; [`PlainSum`]
    /// overrides to also cover its packing correction.
    fn min2_ceiling(&self, b: &[W]) -> u64 {
        self.row(b)
    }
    /// *Exact* cost of `min(a, b)` elementwise without materializing it,
    /// except that once the value is provably `≥ cutoff` the implementation
    /// may bail out with any value `≥ cutoff`. Unlike [`Aggregate::min2`]
    /// this must never over-report a value `< cutoff` (no admissible-bound
    /// corrections): the landmark search records it as a real strategy cost
    /// at budget-leaf nodes. The default is correct wherever `min2` is
    /// already exact-or-bailout; [`PlainSum`] overrides to drop its packing
    /// correction.
    fn eval2(&self, a: &[W], b: &[W], cutoff: u64) -> u64 {
        self.min2(a, b, cutoff)
    }
}

/// Unit weights, sum-distance model: cost = Σ row − row[u].
///
/// Its prune bound adds the BFS-packing correction of Theorem 4's
/// accounting: in a `(n,k)`-uniform game at most `k` targets can sit at
/// distance 1 and at most `k + k²` at distance ≤ 2 (every node's out-degree
/// is at most `k`), so when the optimistic elementwise-min row packs more
/// targets that close, each excess target must pay at least one extra hop.
/// Formally, for any completion `f ≥ t` elementwise with `#{v : f(v) ≤ d} ≤
/// A_d`: `Σf − Σt = Σ_d #{v : t(v) ≤ d < f(v)} ≥ Σ_d (C_d − A_d)⁺` — the
/// correction is admissible, so pruning with it never cuts the subtree
/// holding the DFS-first optimum and every reported field stays identical.
struct PlainSum {
    u: usize,
    /// `A_1 = k`: max targets at distance 1.
    allowed1: u64,
    /// `A_2 = k + k²`: max targets at distance ≤ 2.
    allowed2: u64,
}

impl<W: RowWord> Aggregate<W> for PlainSum {
    // Every total below accumulates at the row width `W`, not `u64`: the
    // tier invariant (`n·M` fits `W`, checked before any `W = u32` engine
    // is built) bounds any sum of ≤ n clamped entries by `n·M`, and the
    // packing counters by `n`, so no partial value can wrap. Keeping the
    // loops at width `W` is what makes the narrow tier pay: u32 lanes
    // vectorize with native unsigned SIMD min/add (u64 has no unsigned
    // vector min on common ISAs), and the `u64` instantiation is
    // bit-identical to accumulating in `u64` directly.
    #[inline(always)]
    fn row(&self, row: &[W]) -> u64 {
        let mut total = W::ZERO;
        for &d in row {
            total = total + d;
        }
        total.widen() - row[self.u].widen()
    }

    #[inline(always)]
    fn min2(&self, a: &[W], b: &[W], cutoff: u64) -> u64 {
        // The diagonal term is subtracted at the end; fold it into the limit
        // so the chunked partial sums compare against an exact threshold.
        let sub = a[self.u].min(b[self.u]);
        let limit = cutoff.saturating_add(sub.widen());
        let one = W::ONE;
        let two = W::ONE + W::ONE;
        let mut total = W::ZERO;
        let mut le1 = W::ZERO;
        let mut le2 = W::ZERO;
        for (ca, cb) in a.chunks(64).zip(b.chunks(64)) {
            for (&x, &y) in ca.iter().zip(cb) {
                let v = x.min(y);
                total = total + v;
                le1 = le1 + if v <= one { W::ONE } else { W::ZERO };
                le2 = le2 + if v <= two { W::ONE } else { W::ZERO };
            }
            // Early-exit granularity only decides whether a doomed bound
            // reports `u64::MAX` or its exact value ≥ cutoff — the caller
            // prunes either way, so the chunk size is a pure tuning knob.
            if total.widen() >= limit {
                return u64::MAX;
            }
        }
        // Exclude the diagonal from the packing counts, then charge the
        // capacity excess at distances 1 and ≤ 2.
        let le1 = le1.widen() - u64::from(sub <= one);
        let le2 = le2.widen() - u64::from(sub <= two);
        let correction = le1.saturating_sub(self.allowed1) + le2.saturating_sub(self.allowed2);
        (total.widen() - sub.widen()).saturating_add(correction)
    }

    #[inline(always)]
    fn copy_min2(&self, dst: &mut [W], a: &[W], b: &[W]) -> u64 {
        let mut total = W::ZERO;
        for ((d, &x), &y) in dst.iter_mut().zip(a).zip(b) {
            let v = x.min(y);
            *d = v;
            total = total + v;
        }
        total.widen() - dst[self.u].widen()
    }

    #[inline(always)]
    fn min2_ceiling(&self, b: &[W]) -> u64 {
        // `min2` returns `Σ min(a,b) − diag + correction ≤ Σ b + correction`,
        // and each packing count is at most `n` targets, so the correction
        // caps at `(n − A_d)⁺` per distance class.
        let mut total = W::ZERO;
        for &d in b {
            total = total + d;
        }
        let n = b.len() as u64;
        total.widen() + n.saturating_sub(self.allowed1) + n.saturating_sub(self.allowed2)
    }

    #[inline(always)]
    fn eval2(&self, a: &[W], b: &[W], cutoff: u64) -> u64 {
        // Exact (no packing correction — that is a *bound* device and would
        // over-report a recordable cost); same chunked early exit as `min2`.
        let sub = a[self.u].min(b[self.u]);
        let limit = cutoff.saturating_add(sub.widen());
        let mut total = W::ZERO;
        for (ca, cb) in a.chunks(64).zip(b.chunks(64)) {
            for (&x, &y) in ca.iter().zip(cb) {
                total = total + x.min(y);
            }
            if total.widen() >= limit {
                return u64::MAX;
            }
        }
        total.widen() - sub.widen()
    }
}

/// General weights, sum-distance model.
struct WeightedSum<'a> {
    targets: &'a [(u32, u64)],
}

impl<W: RowWord> Aggregate<W> for WeightedSum<'_> {
    #[inline(always)]
    fn row(&self, row: &[W]) -> u64 {
        self.targets
            .iter()
            .map(|&(v, w)| w * row[v as usize].widen())
            .sum()
    }

    #[inline(always)]
    fn min2(&self, a: &[W], b: &[W], cutoff: u64) -> u64 {
        let mut total = 0u64;
        for chunk in self.targets.chunks(16) {
            total += chunk
                .iter()
                .map(|&(v, w)| w * a[v as usize].min(b[v as usize]).widen())
                .sum::<u64>();
            if total >= cutoff {
                return u64::MAX;
            }
        }
        total
    }

    #[inline(always)]
    fn copy_min2(&self, dst: &mut [W], a: &[W], b: &[W]) -> u64 {
        copy_min(dst, a, b);
        self.row(dst)
    }
}

/// General weights, max-distance model (§5's BBC-max).
struct WeightedMax<'a> {
    targets: &'a [(u32, u64)],
}

impl<W: RowWord> Aggregate<W> for WeightedMax<'_> {
    #[inline(always)]
    fn row(&self, row: &[W]) -> u64 {
        self.targets
            .iter()
            .map(|&(v, w)| w * row[v as usize].widen())
            .max()
            .unwrap_or(0)
    }

    #[inline(always)]
    fn min2(&self, a: &[W], b: &[W], cutoff: u64) -> u64 {
        let mut worst = 0u64;
        for &(v, w) in self.targets {
            worst = worst.max(w * a[v as usize].min(b[v as usize]).widen());
            if worst >= cutoff {
                return u64::MAX;
            }
        }
        worst
    }

    #[inline(always)]
    fn copy_min2(&self, dst: &mut [W], a: &[W], b: &[W]) -> u64 {
        copy_min(dst, a, b);
        self.row(dst)
    }
}

/// Reusable branch-and-bound workspace: the suffix-min bound rows and the
/// per-depth accumulated min-rows, flattened to two arenas so a search
/// allocates nothing when the scratch is warm.
#[derive(Clone, Debug)]
pub(crate) struct SearchScratch<W = u64> {
    suffix: Vec<W>,
    levels: Vec<W>,
    selection: Vec<usize>,
    /// `min_price_suffix[i]` = cheapest link cost among candidates `i..m`
    /// (`u64::MAX` at `m`): lets the search skip subtrees where the
    /// remaining budget cannot afford any further candidate.
    min_price_suffix: Vec<u64>,
}

impl<W: RowWord> Default for SearchScratch<W> {
    fn default() -> Self {
        Self {
            suffix: Vec::new(),
            levels: Vec::new(),
            selection: Vec::new(),
            min_price_suffix: Vec::new(),
        }
    }
}

impl<W: RowWord> SearchScratch<W> {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    fn reserve(&mut self, m: usize, n: usize) {
        self.suffix.clear();
        self.suffix.resize((m + 1) * n, W::ZERO);
        self.reserve_without_suffix(m, n);
    }

    /// [`SearchScratch::reserve`] minus the suffix arena — the landmark
    /// search replaces the `m × n` suffix-min rows with `groups × n` cached
    /// bound rows, so it never builds (or touches) `suffix`.
    fn reserve_without_suffix(&mut self, m: usize, n: usize) {
        self.levels.clear();
        self.levels.resize((m + 1) * n, W::ZERO);
        self.selection.clear();
        self.min_price_suffix.clear();
        self.min_price_suffix.resize(m + 1, u64::MAX);
    }
}

/// Exact best response for node `u` under `config`.
///
/// Enumerates every budget-feasible strategy by branch-and-bound over the
/// oracle rows. Deterministic: with equal costs, the first strategy in the
/// search order (candidates ascending, include-before-exclude) wins.
///
/// # Errors
///
/// [`Error::SearchBudgetExceeded`] if more than
/// `options.evaluation_limit` strategies would need evaluating; fall back to
/// [`greedy`] in that case.
///
/// # Examples
///
/// ```
/// use bbc_core::{best_response, BestResponseOptions, Configuration, GameSpec, NodeId};
///
/// // Path 0->1->2 in a (3,1)-uniform game; node 2 is disconnected and its
/// // best response is to link back, say to node 0.
/// let spec = GameSpec::uniform(3, 1);
/// let cfg = Configuration::from_strategies(&spec, vec![
///     vec![NodeId::new(1)], vec![NodeId::new(2)], vec![],
/// ])?;
/// let out = best_response::exact(&spec, &cfg, NodeId::new(2), &BestResponseOptions::default())?;
/// assert!(out.improves());
/// assert_eq!(out.best_strategy, vec![NodeId::new(0)]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn exact(
    spec: &GameSpec,
    config: &Configuration,
    u: NodeId,
    options: &BestResponseOptions,
) -> Result<BestResponseOutcome> {
    let oracle = DeviationOracle::build(spec, config, u);
    exact_with_oracle(&oracle, config, options)
}

/// Exact best response reusing a prebuilt oracle.
pub fn exact_with_oracle(
    oracle: &DeviationOracle<'_>,
    config: &Configuration,
    options: &BestResponseOptions,
) -> Result<BestResponseOutcome> {
    let current_cost = oracle.strategy_cost(config.strategy(oracle.node()));
    let mut scratch = SearchScratch::new();
    run_search(&oracle.view(), current_cost, options, &mut scratch)
}

/// The branch-and-bound search over a prepared view. `current_cost` must be
/// the cost of the node's present strategy priced through the same rows.
///
/// The incumbent starts at `current_cost + 1` rather than `∞`. This is
/// sound and changes no reported field except `evaluations`: the node's
/// current strategy is itself in the search space, so the optimum is at
/// most `current_cost`, and any DFS subtree containing the first-in-order
/// optimal strategy has optimistic bound ≤ optimum < incumbent at every
/// moment before that strategy is reached — it is never pruned, and the
/// search records exactly the strategy the unseeded search would. In
/// first-improvement mode the same argument applies to the first improving
/// strategy (every improvement costs < `current_cost` < any pre-improvement
/// incumbent). The payoff is that testing an already-stable node — the
/// dominant operation in walk tails and stability sweeps — prunes almost
/// the entire subset lattice immediately.
pub(crate) fn run_search<W: RowWord>(
    view: &OracleView<'_, W>,
    current_cost: u64,
    options: &BestResponseOptions,
    scratch: &mut SearchScratch<W>,
) -> Result<BestResponseOutcome> {
    let n = view.n();
    let m = view.candidates.len();
    scratch.reserve(m, n);
    // bbc-lint: allow(panic, the engine's tier check proved the penalty representable in W)
    let penalty = W::from_u64(view.spec.penalty()).expect("penalty fits the row tier");

    // Optimistic completion rows: suffix[i] = elementwise min of rows[i..];
    // suffix[m] is all-penalty ("buy nothing more").
    scratch.suffix[m * n..].fill(penalty);
    for i in (0..m).rev() {
        let (head, tail) = scratch.suffix.split_at_mut((i + 1) * n);
        copy_min(&mut head[i * n..], &tail[..n], view.row(i));
    }
    // The empty strategy's row: every target at the penalty distance.
    scratch.levels[..n].fill(penalty);
    for i in (0..m).rev() {
        scratch.min_price_suffix[i] = scratch.min_price_suffix[i + 1].min(view.prices[i]);
    }

    // Monomorphize the hot loops on the game's cost shape.
    if view.plain_sum() {
        let k = view
            .spec
            .uniform_k()
            // bbc-lint: allow(panic, plain_sum() returns true only for uniform sum games)
            .expect("plain_sum implies a uniform game");
        let agg = PlainSum {
            u: view.node.index(),
            allowed1: k,
            allowed2: k.saturating_add(k.saturating_mul(k)),
        };
        run_search_with(view, agg, current_cost, options, scratch)
    } else {
        match view.spec.cost_model() {
            CostModel::SumDistance => {
                let agg = WeightedSum {
                    targets: view.weighted_targets,
                };
                run_search_with(view, agg, current_cost, options, scratch)
            }
            CostModel::MaxDistance => {
                let agg = WeightedMax {
                    targets: view.weighted_targets,
                };
                run_search_with(view, agg, current_cost, options, scratch)
            }
        }
    }
}

fn run_search_with<W: RowWord, A: Aggregate<W>>(
    view: &OracleView<'_, W>,
    agg: A,
    current_cost: u64,
    options: &BestResponseOptions,
    scratch: &mut SearchScratch<W>,
) -> Result<BestResponseOutcome> {
    let mut search = Search {
        view,
        agg,
        options,
        scratch,
        best_cost: current_cost.saturating_add(1),
        best_strategy: Vec::new(),
        evaluations: 0,
        current_cost,
        done: false,
    };

    // The empty strategy is always feasible; evaluate it as the baseline.
    let empty_cost = {
        let n = search.view.n();
        search.agg.row(&search.scratch.levels[..n])
    };
    search.record(0, empty_cost)?;
    search.dfs(0, 0, 0)?;

    Ok(BestResponseOutcome {
        node: view.node,
        current_cost,
        best_cost: search.best_cost,
        best_strategy: search.best_strategy,
        evaluations: search.evaluations,
        optimal: !search.done,
        bounds_hit: 0,
        rows_materialized: 0,
    })
}

struct Search<'o, 'r, W: RowWord, A: Aggregate<W>> {
    view: &'o OracleView<'r, W>,
    agg: A,
    options: &'o BestResponseOptions,
    scratch: &'o mut SearchScratch<W>,
    best_cost: u64,
    best_strategy: Vec<NodeId>,
    evaluations: u64,
    current_cost: u64,
    /// Set when stop_at_first_improvement has triggered.
    done: bool,
}

impl<W: RowWord, A: Aggregate<W>> Search<'_, '_, W, A> {
    /// Records one evaluated selection (whose min-row sits at `level` and
    /// costs `cost`) against the incumbent and the evaluation budget.
    fn record(&mut self, _level: usize, cost: u64) -> Result<()> {
        self.evaluations += 1;
        if self.evaluations > self.options.evaluation_limit {
            return Err(Error::SearchBudgetExceeded {
                limit: self.options.evaluation_limit,
            });
        }
        if cost < self.best_cost {
            self.best_cost = cost;
            self.best_strategy = self
                .scratch
                .selection
                .iter()
                .map(|&i| self.view.candidates[i])
                .collect();
            self.best_strategy.sort_unstable();
            if self.options.stop_at_first_improvement && cost < self.current_cost {
                self.done = true;
            }
        }
        Ok(())
    }

    fn dfs(&mut self, i: usize, level: usize, spent: u64) -> Result<()> {
        if self.done || i == self.view.candidates.len() {
            return Ok(());
        }
        // Nothing left the budget can pay for: no deeper selection will ever
        // be evaluated, so the whole subtree (an evaluation-free exclude
        // chain) can be skipped without touching any reported field.
        if spent.saturating_add(self.scratch.min_price_suffix[i]) > self.view.budget {
            return Ok(());
        }
        let n = self.view.n();
        // Optimistic bound: even taking every remaining candidate for free
        // cannot beat the incumbent -> prune.
        let bound = self.agg.min2(
            &self.scratch.levels[level * n..(level + 1) * n],
            &self.scratch.suffix[i * n..(i + 1) * n],
            self.best_cost,
        );
        if bound >= self.best_cost {
            return Ok(());
        }

        // Include candidate i if affordable.
        let price = self.view.prices[i];
        if spent + price <= self.view.budget {
            let (cur, next) = self.scratch.levels.split_at_mut((level + 1) * n);
            let cost = self
                .agg
                .copy_min2(&mut next[..n], &cur[level * n..], self.view.row(i));
            self.scratch.selection.push(i);
            self.record(level + 1, cost)?;
            self.dfs(i + 1, level + 1, spent + price)?;
            self.scratch.selection.pop();
        }
        // Exclude candidate i.
        self.dfs(i + 1, level, spent)
    }
}

/// Reusable workspace for the landmark-bounded search: the per-query bound
/// rows that replace the exact suffix-min arena, plus their construction
/// scratch. Owned by the engine so a warm query allocates nothing.
///
/// Candidates arrive ascending by id, so consecutive candidates sharing a
/// [`BlockPartition`] block form contiguous *groups*. Per group `g` the
/// build computes one admissible bound row over the whole candidate suffix
/// starting at `g`'s first member:
///
/// ```text
/// bsfx[g][v] = min(M, ℓmin_g + max( max_l (r_l[v] − SMA_l,g)⁺ ,
///                                   cfx_g[block(v)] ))
/// ```
///
/// where `SMA_l,g = max r_l[c]` and `ℓmin_g = min ℓ(u,c)` over candidates in
/// groups `≥ g`, and `cfx_g` is the elementwise min of the block-envelope
/// rows of those groups' blocks. Every term lower-bounds `d_G(c, v) ≤
/// d_{G∖u}(c, v)` for *each* remaining candidate `c`, so `bsfx[g]`
/// elementwise lower-bounds the exact suffix-min row at any position inside
/// group `g` — an admissible stand-in for `suffix[i]` that costs
/// `O(groups · n)` to store instead of `O(m · n)` to rebuild per query.
#[derive(Clone, Debug)]
pub(crate) struct LandmarkScratch<W = u64> {
    /// Group index of each staged candidate.
    group_of: Vec<u32>,
    /// Per-group bound rows, stride `n`.
    bsfx: Vec<W>,
    /// Per-group [`Aggregate::min2_ceiling`] of `bsfx` (the O(1) gate);
    /// filled inside the monomorphized search.
    hi: Vec<u64>,
    groups: usize,
    /// Suffix-max of each landmark row over candidate groups (landmark-major,
    /// stride `groups`). Transient build scratch.
    sma: Vec<W>,
    /// Suffix-min link length per group. Transient build scratch.
    lmin: Vec<W>,
    /// Suffix-combined envelope rows per group, stride `block_count`.
    /// Transient build scratch.
    cfx: Vec<W>,
}

impl<W: RowWord> Default for LandmarkScratch<W> {
    fn default() -> Self {
        Self {
            group_of: Vec::new(),
            bsfx: Vec::new(),
            hi: Vec::new(),
            groups: 0,
            sma: Vec::new(),
            lmin: Vec::new(),
            cfx: Vec::new(),
        }
    }
}

impl<W: RowWord> LandmarkScratch<W> {
    pub(crate) fn new() -> Self {
        Self::default()
    }
}

/// Builds the per-query bound rows (see [`LandmarkScratch`]) from the
/// engine's cached full-`G` landmark rows and block envelope.
///
/// `lengths[i]` must be the link *length* `ℓ(u, candidates[i])` at row
/// width; `lm_rows` are clamped `d_G(l, ·)` rows. Admissibility chain per
/// remaining candidate `c` and target `v`: `(r_l[v] − r_l[c])⁺ ≤ d_G(c, v)`
/// (triangle inequality, safe on clamped rows) and the block envelope is a
/// further coarsening of the same bound, while `d_G ≤ d_{G∖u}` because
/// removing `u`'s arcs only lengthens paths.
#[allow(clippy::too_many_arguments)] // one call site, engine-internal plumbing
pub(crate) fn build_landmark_bounds<W: RowWord>(
    scratch: &mut LandmarkScratch<W>,
    candidates: &[NodeId],
    lengths: &[W],
    lm_rows: &[&[W]],
    part: &bbc_graph::BlockPartition,
    env: &bbc_graph::BlockEnvelope<W>,
    n: usize,
    penalty: W,
) {
    let m = candidates.len();
    scratch.group_of.clear();
    scratch.groups = 0;
    if m == 0 {
        scratch.bsfx.clear();
        return;
    }

    // Contiguous block groups + each group's block id and first member.
    let mut group_block: Vec<u32> = Vec::new();
    let mut group_start: Vec<u32> = Vec::new();
    let mut cur_block = usize::MAX;
    for (i, c) in candidates.iter().enumerate() {
        let b = part.block_of(c.index());
        if b != cur_block {
            cur_block = b;
            group_block.push(b as u32); // bbc-lint: allow(narrowing-cast, block ids are < n <= u32::MAX)
            group_start.push(i as u32); // bbc-lint: allow(narrowing-cast, i indexes candidates, bounded by n)
        }
        // bbc-lint: allow(narrowing-cast, one group per block, so the count is bounded by n <= u32::MAX)
        scratch.group_of.push((group_block.len() - 1) as u32);
    }
    let groups = group_block.len();
    scratch.groups = groups;

    // Suffix-min link length per group.
    scratch.lmin.clear();
    scratch.lmin.resize(groups, penalty);
    let mut running = penalty;
    for g in (0..groups).rev() {
        let start = group_start[g] as usize;
        let end = if g + 1 < groups {
            group_start[g + 1] as usize
        } else {
            m
        };
        for &len in &lengths[start..end] {
            running = running.min(len);
        }
        scratch.lmin[g] = running;
    }

    // Suffix-max of each landmark row over the candidates of groups ≥ g.
    let lcount = lm_rows.len();
    scratch.sma.clear();
    scratch.sma.resize(lcount * groups, W::ZERO);
    for (l, row) in lm_rows.iter().enumerate() {
        let sma = &mut scratch.sma[l * groups..(l + 1) * groups];
        let mut running = W::ZERO;
        for g in (0..groups).rev() {
            let start = group_start[g] as usize;
            let end = if g + 1 < groups {
                group_start[g + 1] as usize
            } else {
                m
            };
            for c in &candidates[start..end] {
                running = running.max(row[c.index()]);
            }
            sma[g] = running;
        }
    }

    // Suffix-combined block-envelope rows: cfx[g][B] = min over the blocks
    // of groups ≥ g of env[block][B].
    let blocks = part.block_count();
    scratch.cfx.clear();
    scratch.cfx.resize(groups * blocks, W::ZERO);
    for g in (0..groups).rev() {
        let a = group_block[g] as usize;
        if g + 1 < groups {
            let (head, tail) = scratch.cfx.split_at_mut((g + 1) * blocks);
            let dst = &mut head[g * blocks..];
            let prev = &tail[..blocks];
            for (b, (d, &p)) in dst.iter_mut().zip(prev).enumerate() {
                *d = p.min(env.bound(a, b));
            }
        } else {
            for (b, d) in scratch.cfx[g * blocks..(g + 1) * blocks]
                .iter_mut()
                .enumerate()
            {
                *d = env.bound(a, b);
            }
        }
    }

    // Final bound rows, built in three vector passes per group: seed with
    // the coarse block term, raise by each landmark term, then add the
    // suffix-min link length and clamp at the penalty.
    scratch.bsfx.clear();
    scratch.bsfx.resize(groups * n, W::ZERO);
    for g in 0..groups {
        let dst = &mut scratch.bsfx[g * n..(g + 1) * n];
        let cfx = &scratch.cfx[g * blocks..(g + 1) * blocks];
        for (v, d) in dst.iter_mut().enumerate() {
            *d = cfx[part.block_of(v)];
        }
        for (l, row) in lm_rows.iter().enumerate() {
            let s = scratch.sma[l * groups + g];
            for (d, &r) in dst.iter_mut().zip(*row) {
                // (r − s)⁺, branchless.
                *d = (*d).max(r.max(s) - s);
            }
        }
        let lmin = scratch.lmin[g];
        for d in dst.iter_mut() {
            *d = penalty.min(lmin + *d);
        }
    }
}

/// The landmark-bounded branch-and-bound: identical DFS preorder, record
/// semantics, and incumbent seeding as [`run_search`], with two changes that
/// provably never alter a reported decision field:
///
/// * the exact suffix-min bound rows are replaced by the cached
///   [`LandmarkScratch`] bound rows (admissible ⇒ every subtree holding a
///   would-be incumbent update survives pruning in both searches, and every
///   subtree pruned here is update-free in the exact search too — only the
///   `evaluations`/`bounds_hit` effort counters may differ);
/// * candidate rows are *fetched on demand* the first time a candidate is
///   included (`fetch` fills exact rows into the staged arena), and a
///   budget-leaf include (no deeper candidate affordable) is costed with
///   [`Aggregate::eval2`] instead of materializing a next-level row the
///   recursion would never read.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_search_landmark<W: RowWord>(
    view: &OracleView<'_, W>,
    rows: &mut [W],
    present: &mut [bool],
    fetch: &mut dyn FnMut(usize, &mut [W]),
    bounds: &mut LandmarkScratch<W>,
    current_cost: u64,
    options: &BestResponseOptions,
    scratch: &mut SearchScratch<W>,
) -> Result<BestResponseOutcome> {
    let n = view.n();
    let m = view.candidates.len();
    scratch.reserve_without_suffix(m, n);
    // bbc-lint: allow(panic, the engine's tier check proved the penalty representable in W)
    let penalty = W::from_u64(view.spec.penalty()).expect("penalty fits the row tier");
    scratch.levels[..n].fill(penalty);
    for i in (0..m).rev() {
        scratch.min_price_suffix[i] = scratch.min_price_suffix[i + 1].min(view.prices[i]);
    }

    if view.plain_sum() {
        let k = view
            .spec
            .uniform_k()
            // bbc-lint: allow(panic, plain_sum() returns true only for uniform sum games)
            .expect("plain_sum implies a uniform game");
        let agg = PlainSum {
            u: view.node.index(),
            allowed1: k,
            allowed2: k.saturating_add(k.saturating_mul(k)),
        };
        run_search_landmark_with(
            view,
            agg,
            rows,
            present,
            fetch,
            bounds,
            current_cost,
            options,
            scratch,
        )
    } else {
        match view.spec.cost_model() {
            CostModel::SumDistance => {
                let agg = WeightedSum {
                    targets: view.weighted_targets,
                };
                run_search_landmark_with(
                    view,
                    agg,
                    rows,
                    present,
                    fetch,
                    bounds,
                    current_cost,
                    options,
                    scratch,
                )
            }
            CostModel::MaxDistance => {
                let agg = WeightedMax {
                    targets: view.weighted_targets,
                };
                run_search_landmark_with(
                    view,
                    agg,
                    rows,
                    present,
                    fetch,
                    bounds,
                    current_cost,
                    options,
                    scratch,
                )
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_search_landmark_with<W: RowWord, A: Aggregate<W>>(
    view: &OracleView<'_, W>,
    agg: A,
    rows: &mut [W],
    present: &mut [bool],
    fetch: &mut dyn FnMut(usize, &mut [W]),
    bounds: &mut LandmarkScratch<W>,
    current_cost: u64,
    options: &BestResponseOptions,
    scratch: &mut SearchScratch<W>,
) -> Result<BestResponseOutcome> {
    let n = view.n();
    // Per-group ceilings for the O(1) bound gate. Static per query; the gate
    // fires more and more as the incumbent drops below the ceilings.
    bounds.hi.clear();
    for g in 0..bounds.groups {
        bounds
            .hi
            .push(agg.min2_ceiling(&bounds.bsfx[g * n..(g + 1) * n]));
    }

    let mut search = LandmarkSearch {
        view,
        agg,
        options,
        scratch,
        bounds,
        rows,
        present,
        fetch,
        best_cost: current_cost.saturating_add(1),
        best_strategy: Vec::new(),
        evaluations: 0,
        current_cost,
        done: false,
        bounds_hit: 0,
    };

    let empty_cost = {
        let n = search.view.n();
        search.agg.row(&search.scratch.levels[..n])
    };
    search.record(empty_cost)?;
    search.dfs(0, 0, 0)?;

    Ok(BestResponseOutcome {
        node: view.node,
        current_cost,
        best_cost: search.best_cost,
        best_strategy: search.best_strategy,
        evaluations: search.evaluations,
        optimal: !search.done,
        bounds_hit: search.bounds_hit,
        rows_materialized: 0, // filled by the engine from its row counters
    })
}

struct LandmarkSearch<'o, 'r, W: RowWord, A: Aggregate<W>> {
    view: &'o OracleView<'r, W>,
    agg: A,
    options: &'o BestResponseOptions,
    scratch: &'o mut SearchScratch<W>,
    bounds: &'o LandmarkScratch<W>,
    /// Staged candidate rows (stride `n`); entries with `present[i] == false`
    /// hold placeholders until `fetch` materializes them.
    rows: &'o mut [W],
    present: &'o mut [bool],
    fetch: &'o mut dyn FnMut(usize, &mut [W]),
    best_cost: u64,
    best_strategy: Vec<NodeId>,
    evaluations: u64,
    current_cost: u64,
    done: bool,
    bounds_hit: u64,
}

impl<W: RowWord, A: Aggregate<W>> LandmarkSearch<'_, '_, W, A> {
    /// Mirror of [`Search::record`] — byte-identical incumbent semantics.
    fn record(&mut self, cost: u64) -> Result<()> {
        self.evaluations += 1;
        if self.evaluations > self.options.evaluation_limit {
            return Err(Error::SearchBudgetExceeded {
                limit: self.options.evaluation_limit,
            });
        }
        if cost < self.best_cost {
            self.best_cost = cost;
            self.best_strategy = self
                .scratch
                .selection
                .iter()
                .map(|&i| self.view.candidates[i])
                .collect();
            self.best_strategy.sort_unstable();
            if self.options.stop_at_first_improvement && cost < self.current_cost {
                self.done = true;
            }
        }
        Ok(())
    }

    fn dfs(&mut self, i: usize, level: usize, spent: u64) -> Result<()> {
        if self.done || i == self.view.candidates.len() {
            return Ok(());
        }
        if spent.saturating_add(self.scratch.min_price_suffix[i]) > self.view.budget {
            return Ok(());
        }
        let n = self.view.n();
        let g = self.bounds.group_of[i] as usize;
        // O(1) gate: when the group ceiling is below the incumbent, the
        // bound pass cannot prune — skip it (skipping a prune never changes
        // any recorded field; see the admissibility note on
        // [`run_search_landmark`]).
        if self.bounds.hi[g] >= self.best_cost {
            let bound = self.agg.min2(
                &self.scratch.levels[level * n..(level + 1) * n],
                &self.bounds.bsfx[g * n..(g + 1) * n],
                self.best_cost,
            );
            if bound >= self.best_cost {
                self.bounds_hit += 1;
                return Ok(());
            }
        }

        let price = self.view.prices[i];
        if spent + price <= self.view.budget {
            if !self.present[i] {
                (self.fetch)(i, &mut self.rows[i * n..(i + 1) * n]);
                self.present[i] = true;
            }
            if (spent + price).saturating_add(self.scratch.min_price_suffix[i + 1])
                > self.view.budget
            {
                // Budget leaf: the exact search's recursion below this
                // include exits at its own price check before recording
                // anything, so the next-level row is write-only — cost the
                // selection without materializing it.
                let cost = self.agg.eval2(
                    &self.scratch.levels[level * n..(level + 1) * n],
                    &self.rows[i * n..(i + 1) * n],
                    self.best_cost,
                );
                self.scratch.selection.push(i);
                self.record(cost)?;
                self.scratch.selection.pop();
            } else {
                let (cur, next) = self.scratch.levels.split_at_mut((level + 1) * n);
                let cost = self.agg.copy_min2(
                    &mut next[..n],
                    &cur[level * n..],
                    &self.rows[i * n..(i + 1) * n],
                );
                self.scratch.selection.push(i);
                self.record(cost)?;
                self.dfs(i + 1, level + 1, spent + price)?;
                self.scratch.selection.pop();
            }
        }
        self.dfs(i + 1, level, spent)
    }
}

/// Greedy-plus-swaps heuristic best response.
///
/// Builds a strategy by repeatedly adding the candidate with the largest
/// marginal cost reduction, then applies single-link swaps until no swap
/// improves. Always returns a strategy at least as good as the node's
/// current one *or* the node's current strategy itself; `optimal` is `false`
/// unless the strategy space was trivially small.
pub fn greedy(spec: &GameSpec, config: &Configuration, u: NodeId) -> BestResponseOutcome {
    let oracle = DeviationOracle::build(spec, config, u);
    greedy_with_oracle(&oracle, config)
}

/// Greedy heuristic reusing a prebuilt oracle.
pub fn greedy_with_oracle(
    oracle: &DeviationOracle<'_>,
    config: &Configuration,
) -> BestResponseOutcome {
    let view = oracle.view();
    let u = oracle.node();
    let n = view.n();
    let m = view.candidates.len();
    let penalty = view.spec.penalty();
    let current_cost = oracle.strategy_cost(config.strategy(u));
    let mut evaluations = 0u64;

    let mut selected: Vec<usize> = Vec::new();
    let mut row = vec![penalty; n];
    let mut spent = 0u64;

    // Greedy additions.
    loop {
        let mut best: Option<(u64, usize)> = None;
        for i in 0..m {
            if selected.contains(&i) || spent + view.prices[i] > view.budget {
                continue;
            }
            let cost = view.aggregate_min(&row, view.row(i));
            evaluations += 1;
            if best.is_none_or(|(bc, _)| cost < bc) {
                best = Some((cost, i));
            }
        }
        let Some((_, i)) = best else { break };
        // Adding a link can never increase cost (the min-row only shrinks),
        // so keep adding while budget lasts; stop when nothing is affordable.
        min_into(&mut row, view.row(i));
        spent += view.prices[i];
        selected.push(i);
    }

    // 1-swap local search.
    let mut trial = vec![0u64; n];
    let mut improved = true;
    while improved {
        improved = false;
        let base_cost = view.aggregate(&row);
        'swaps: for si in 0..selected.len() {
            let out = selected[si];
            for i in 0..m {
                if selected.contains(&i) {
                    continue;
                }
                if spent - view.prices[out] + view.prices[i] > view.budget {
                    continue;
                }
                // Rebuild the row without `out`, with `i`.
                trial.fill(penalty);
                for &sj in &selected {
                    if sj != out {
                        min_into(&mut trial, view.row(sj));
                    }
                }
                min_into(&mut trial, view.row(i));
                let cost = view.aggregate(&trial);
                evaluations += 1;
                if cost < base_cost {
                    spent = spent - view.prices[out] + view.prices[i];
                    selected[si] = i;
                    std::mem::swap(&mut row, &mut trial);
                    improved = true;
                    break 'swaps;
                }
            }
        }
    }

    let best_cost = view.aggregate(&row);
    let mut best_strategy: Vec<NodeId> = selected.iter().map(|&i| view.candidates[i]).collect();
    best_strategy.sort_unstable();

    // Never report a "best" worse than what the node already has.
    if best_cost >= current_cost {
        return BestResponseOutcome {
            node: u,
            current_cost,
            best_cost: current_cost,
            best_strategy: config.strategy(u).to_vec(),
            evaluations,
            optimal: false,
            bounds_hit: 0,
            rows_materialized: 0,
        };
    }
    BestResponseOutcome {
        node: u,
        current_cost,
        best_cost,
        best_strategy,
        evaluations,
        optimal: false,
        bounds_hit: 0,
        rows_materialized: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Configuration, Evaluator};

    fn v(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn opts() -> BestResponseOptions {
        BestResponseOptions::default()
    }

    /// Brute-force best response: evaluate every feasible subset through a
    /// full Evaluator re-evaluation.
    fn brute_force(spec: &GameSpec, config: &Configuration, u: NodeId) -> u64 {
        let mut eval = Evaluator::new(spec);
        let pool = spec.affordable_targets(u);
        let mut best = u64::MAX;
        for mask in 0u32..(1 << pool.len()) {
            let targets: Vec<NodeId> = pool
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, &t)| t)
                .collect();
            if spec.validate_strategy(u, &targets).is_err() {
                continue;
            }
            let mut trial = config.clone();
            trial.set_strategy(spec, u, targets).unwrap();
            best = best.min(eval.node_cost(&trial, u));
        }
        best
    }

    #[test]
    fn oracle_cost_matches_evaluator_on_current_strategy() {
        let spec = GameSpec::uniform(6, 2);
        for seed in 0..10 {
            let cfg = Configuration::random(&spec, seed);
            let mut eval = Evaluator::new(&spec);
            for u in NodeId::all(6) {
                let oracle = DeviationOracle::build(&spec, &cfg, u);
                assert_eq!(
                    oracle.strategy_cost(cfg.strategy(u)),
                    eval.node_cost(&cfg, u),
                    "seed {seed} node {u}"
                );
            }
        }
    }

    #[test]
    fn exact_matches_brute_force_uniform() {
        let spec = GameSpec::uniform(6, 2);
        for seed in 0..10 {
            let cfg = Configuration::random(&spec, seed);
            for u in NodeId::all(6) {
                let out = exact(&spec, &cfg, u, &opts()).unwrap();
                assert!(out.optimal);
                assert_eq!(
                    out.best_cost,
                    brute_force(&spec, &cfg, u),
                    "seed {seed} node {u}"
                );
            }
        }
    }

    #[test]
    fn exact_matches_brute_force_weighted() {
        let spec = GameSpec::builder(6)
            .default_budget(3)
            .weight(0, 3, 9)
            .weight(1, 4, 5)
            .link_length(0, 1, 4)
            .link_length(2, 3, 6)
            .link_cost(0, 2, 2)
            .build()
            .unwrap();
        for seed in 0..10 {
            let cfg = Configuration::random(&spec, seed);
            for u in NodeId::all(6) {
                let out = exact(&spec, &cfg, u, &opts()).unwrap();
                assert_eq!(
                    out.best_cost,
                    brute_force(&spec, &cfg, u),
                    "seed {seed} node {u}"
                );
            }
        }
    }

    #[test]
    fn exact_matches_brute_force_max_model() {
        let spec = GameSpec::uniform(6, 2).with_cost_model(CostModel::MaxDistance);
        for seed in 0..10 {
            let cfg = Configuration::random(&spec, seed);
            for u in NodeId::all(6) {
                let out = exact(&spec, &cfg, u, &opts()).unwrap();
                assert_eq!(
                    out.best_cost,
                    brute_force(&spec, &cfg, u),
                    "seed {seed} node {u}"
                );
            }
        }
    }

    #[test]
    fn best_strategy_actually_achieves_best_cost() {
        let spec = GameSpec::uniform(7, 2);
        let cfg = Configuration::random(&spec, 3);
        let mut eval = Evaluator::new(&spec);
        for u in NodeId::all(7) {
            let out = exact(&spec, &cfg, u, &opts()).unwrap();
            let mut applied = cfg.clone();
            applied
                .set_strategy(&spec, u, out.best_strategy.clone())
                .unwrap();
            assert_eq!(eval.node_cost(&applied, u), out.best_cost);
        }
    }

    #[test]
    fn applying_best_response_makes_node_stable() {
        let spec = GameSpec::uniform(7, 2);
        let mut cfg = Configuration::random(&spec, 9);
        let u = v(3);
        let out = exact(&spec, &cfg, u, &opts()).unwrap();
        cfg.set_strategy(&spec, u, out.best_strategy).unwrap();
        let again = exact(&spec, &cfg, u, &opts()).unwrap();
        assert!(
            !again.improves(),
            "best response must be a fixpoint for the mover"
        );
        assert_eq!(again.best_cost, out.best_cost);
    }

    #[test]
    fn evaluation_limit_is_enforced() {
        let spec = GameSpec::uniform(12, 4);
        let cfg = Configuration::random(&spec, 1);
        let tight = BestResponseOptions {
            evaluation_limit: 10,
            stop_at_first_improvement: false,
        };
        let err = exact(&spec, &cfg, v(0), &tight).unwrap_err();
        assert_eq!(err, Error::SearchBudgetExceeded { limit: 10 });
    }

    #[test]
    fn first_improvement_mode_stops_early() {
        let spec = GameSpec::uniform(10, 2);
        // Disconnected node: almost anything improves.
        let mut cfg = Configuration::random(&spec, 5);
        cfg.set_strategy(&spec, v(0), vec![]).unwrap();
        let first = BestResponseOptions {
            stop_at_first_improvement: true,
            ..opts()
        };
        let out = exact(&spec, &cfg, v(0), &first).unwrap();
        assert!(out.improves());
        assert!(!out.optimal, "early exit must not claim optimality");
        let full = exact(&spec, &cfg, v(0), &opts()).unwrap();
        assert!(out.evaluations <= full.evaluations);
    }

    #[test]
    fn greedy_never_worse_than_current() {
        let spec = GameSpec::uniform(9, 3);
        for seed in 0..10 {
            let cfg = Configuration::random(&spec, seed);
            for u in NodeId::all(9) {
                let out = greedy(&spec, &cfg, u);
                assert!(out.best_cost <= out.current_cost);
                assert!(spec.validate_strategy(u, &out.best_strategy).is_ok());
            }
        }
    }

    #[test]
    fn greedy_matches_exact_on_easy_instances() {
        // k=1: greedy with swaps is exact (single link, swaps scan all).
        let spec = GameSpec::uniform(8, 1);
        for seed in 0..10 {
            let cfg = Configuration::random(&spec, seed);
            for u in NodeId::all(8) {
                let g = greedy(&spec, &cfg, u);
                let e = exact(&spec, &cfg, u, &opts()).unwrap();
                assert_eq!(g.best_cost, e.best_cost, "seed {seed} node {u}");
            }
        }
    }

    #[test]
    fn zero_budget_node_best_response_is_empty() {
        let spec = GameSpec::builder(4).budget(0, 0).build().unwrap();
        let cfg = Configuration::empty(4);
        let out = exact(&spec, &cfg, v(0), &opts()).unwrap();
        assert!(out.best_strategy.is_empty());
        assert_eq!(out.best_cost, 3 * spec.penalty());
        assert!(!out.improves());
    }

    #[test]
    fn single_node_game() {
        let spec = GameSpec::uniform(1, 1);
        let cfg = Configuration::empty(1);
        let out = exact(&spec, &cfg, v(0), &opts()).unwrap();
        assert_eq!(out.best_cost, 0);
        assert!(out.best_strategy.is_empty());
    }

    #[test]
    fn nonuniform_link_costs_constrain_subsets() {
        // Node 0 can afford {1} or {2} or {3,4} (cost 2+2 > 3? no: 1+1=2 <= 3)
        // but not {1,2} (3+3=6 > 3).
        let spec = GameSpec::builder(5)
            .default_budget(3)
            .link_cost(0, 1, 3)
            .link_cost(0, 2, 3)
            .build()
            .unwrap();
        let cfg = Configuration::empty(5);
        let out = exact(&spec, &cfg, v(0), &opts()).unwrap();
        assert!(spec.strategy_cost(v(0), &out.best_strategy) <= 3);
        // Best is linking the two cheap targets 3,4 (2 reachable) over one
        // expensive target (1 reachable).
        assert_eq!(out.best_strategy, vec![v(3), v(4)]);
    }
}

//! Exhaustive equilibrium enumeration over joint strategy spaces.
//!
//! The no-equilibrium results (Theorems 1, 2, 7) are *universal* statements:
//! no profile in an exponentially large product space is stable. For the
//! gadget instances the per-node strategy spaces collapse to small candidate
//! sets, and the product becomes enumerable. [`ProfileSpace`] describes such
//! a product; [`find_equilibria`] scans it, checking every profile for
//! stability against the **full, unrestricted** deviation space — the
//! restriction only limits which profiles are *candidates*, never what they
//! may deviate to. [`find_equilibria_parallel`] runs the same scan as a
//! work-stealing fleet over fixed-size linear-index shards and merges by
//! shard start index, so its output is byte-identical to the sequential scan
//! for every thread count.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use crate::{Configuration, DistanceEngine, Error, GameSpec, NodeId, Result, StabilityChecker};

/// Every feasible strategy for node `u`: all subsets of affordable targets
/// whose total link cost is within budget, in deterministic order (by size,
/// then lexicographically).
///
/// # Errors
///
/// Returns [`Error::SearchBudgetExceeded`] if more than `cap` strategies
/// exist; the subset lattice grows as `2^n` and callers must opt in to large
/// enumerations explicitly.
pub fn all_strategies(spec: &GameSpec, u: NodeId, cap: u64) -> Result<Vec<Vec<NodeId>>> {
    let pool = spec.affordable_targets(u);
    let budget = spec.budget(u);
    let mut out: Vec<Vec<NodeId>> = Vec::new();
    let mut stack: Vec<NodeId> = Vec::new();
    #[allow(clippy::too_many_arguments)]
    fn rec(
        spec: &GameSpec,
        u: NodeId,
        pool: &[NodeId],
        from: usize,
        spent: u64,
        budget: u64,
        stack: &mut Vec<NodeId>,
        out: &mut Vec<Vec<NodeId>>,
        cap: u64,
    ) -> Result<()> {
        if out.len() as u64 >= cap {
            return Err(Error::SearchBudgetExceeded { limit: cap });
        }
        out.push(stack.clone());
        for i in from..pool.len() {
            let price = spec.link_cost(u, pool[i]);
            if spent + price <= budget {
                stack.push(pool[i]);
                rec(spec, u, pool, i + 1, spent + price, budget, stack, out, cap)?;
                stack.pop();
            }
        }
        Ok(())
    }
    rec(spec, u, &pool, 0, 0, budget, &mut stack, &mut out, cap)?;
    out.sort_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
    Ok(out)
}

/// A product of per-node candidate strategy sets.
#[derive(Clone, Debug)]
pub struct ProfileSpace {
    per_node: Vec<Vec<Vec<NodeId>>>,
}

impl ProfileSpace {
    /// The full joint strategy space of the game.
    ///
    /// # Errors
    ///
    /// Propagates the per-node cap from [`all_strategies`].
    pub fn full(spec: &GameSpec, per_node_cap: u64) -> Result<Self> {
        let per_node = NodeId::all(spec.node_count())
            .map(|u| all_strategies(spec, u, per_node_cap))
            .collect::<Result<Vec<_>>>()?;
        Ok(Self { per_node })
    }

    /// A restricted space from explicit per-node candidate strategy lists.
    ///
    /// Each strategy is validated against `spec`.
    ///
    /// # Errors
    ///
    /// Returns the first validation failure, a dimension mismatch, or
    /// [`Error::EmptyCandidateSet`] when some node lists no strategies.
    pub fn from_candidates(spec: &GameSpec, candidates: Vec<Vec<Vec<NodeId>>>) -> Result<Self> {
        if candidates.len() != spec.node_count() {
            return Err(Error::DimensionMismatch {
                expected: spec.node_count(),
                actual: candidates.len(),
            });
        }
        for (u, strategies) in candidates.iter().enumerate() {
            if strategies.is_empty() {
                return Err(Error::EmptyCandidateSet {
                    node: NodeId::new(u),
                });
            }
            for s in strategies {
                spec.validate_strategy(NodeId::new(u), s)?;
            }
        }
        let per_node = candidates
            .into_iter()
            .map(|mut ss| {
                for s in &mut ss {
                    s.sort_unstable();
                }
                ss
            })
            .collect();
        Ok(Self { per_node })
    }

    /// Candidate strategies of one node.
    pub fn candidates(&self, u: NodeId) -> &[Vec<NodeId>] {
        &self.per_node[u.index()]
    }

    /// Number of joint profiles in the product.
    pub fn profile_count(&self) -> u128 {
        self.per_node.iter().map(|s| s.len() as u128).product()
    }
}

/// Result of an exhaustive equilibrium scan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EnumerationResult {
    /// Every stable profile found, in enumeration order.
    pub equilibria: Vec<Configuration>,
    /// Profiles examined (equals the space size unless an error aborted).
    pub profiles_checked: u64,
}

/// Scans every profile of `space`, returning all pure Nash equilibria.
///
/// Stability is checked against the full deviation space via the exact
/// best-response search, regardless of how `space` was restricted.
///
/// # Errors
///
/// - [`Error::SearchBudgetExceeded`] if `space` holds more than
///   `max_profiles` profiles (checked up front) or some node's deviation
///   search overruns its internal limit.
pub fn find_equilibria(
    spec: &GameSpec,
    space: &ProfileSpace,
    max_profiles: u64,
) -> Result<EnumerationResult> {
    if space.profile_count() > max_profiles as u128 {
        return Err(Error::SearchBudgetExceeded {
            limit: max_profiles,
        });
    }
    let total = space.profile_count() as u64;
    let checker = StabilityChecker::new(spec);
    let mut worker = ShardWorker::new(spec, space);
    let mut result = EnumerationResult {
        equilibria: Vec::new(),
        profiles_checked: 0,
    };
    worker.scan_linear_range(&checker, 0, total, &mut result)?;
    Ok(result)
}

/// Maximum profiles per work-stealing shard: small enough that a slow shard
/// cannot leave workers idle for long, large enough that the per-shard
/// engine re-sync (one patch per node) amortizes to noise.
const MAX_SHARD_PROFILES: u64 = 256;

/// Shard size for a scan of `total` profiles across `threads` workers:
/// aims for ≥ 8 shards per worker (so stealing can rebalance uneven
/// stability checks) without exceeding [`MAX_SHARD_PROFILES`]. The choice
/// never affects results — shards are merged by start index.
fn shard_size(total: u64, threads: usize) -> u64 {
    (total / (threads as u64 * 8)).clamp(1, MAX_SHARD_PROFILES)
}

/// Parallel variant of [`find_equilibria`]: work-stealing over the **full**
/// odometer space.
///
/// The linear profile index range `[0, profile_count)` is cut into
/// fixed-size shards (≤ 256 profiles, sized for ≥ 8 per worker); workers claim shards
/// from a shared atomic cursor, each scanning with its own
/// [`DistanceEngine`]. Shard results are merged by ascending shard start
/// index, so the output — equilibria order *and* `profiles_checked` — is
/// byte-identical to [`find_equilibria`] for every thread count, and no
/// digit of the odometer (in particular not node 0's candidate list, the old
/// split axis) caps the attainable parallelism.
///
/// # Errors
///
/// Same conditions as [`find_equilibria`]; when several shards fail, the
/// error of the earliest shard (the one a sequential scan would have hit
/// first) is returned.
pub fn find_equilibria_parallel(
    spec: &GameSpec,
    space: &ProfileSpace,
    max_profiles: u64,
    threads: usize,
) -> Result<EnumerationResult> {
    if space.profile_count() > max_profiles as u128 {
        return Err(Error::SearchBudgetExceeded {
            limit: max_profiles,
        });
    }
    let total = space.profile_count() as u64;
    let threads = threads.max(1);
    let shard = shard_size(total, threads);
    let shards = total.div_ceil(shard);
    let threads = threads.min(shards as usize);
    if threads <= 1 {
        return find_equilibria(spec, space, max_profiles);
    }

    let cursor = AtomicU64::new(0);
    let stop = AtomicBool::new(false);
    let per_worker: Vec<Vec<(u64, Result<EnumerationResult>)>> = std::thread::scope(|scope| {
        // Returns Result so a panicked worker surfaces as a typed error in
        // the caller's thread instead of re-raising the panic here.
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let checker = StabilityChecker::new(spec);
                    let mut worker = ShardWorker::new(spec, space);
                    let mut done: Vec<(u64, Result<EnumerationResult>)> = Vec::new();
                    loop {
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                        let shard_id = cursor.fetch_add(1, Ordering::Relaxed);
                        if shard_id >= shards {
                            break;
                        }
                        let lo = shard_id * shard;
                        let hi = (lo + shard).min(total);
                        let mut result = EnumerationResult {
                            equilibria: Vec::new(),
                            profiles_checked: 0,
                        };
                        let scanned = worker.scan_linear_range(&checker, lo, hi, &mut result);
                        if scanned.is_err() {
                            stop.store(true, Ordering::Relaxed);
                            done.push((shard_id, scanned.map(|()| result)));
                            break;
                        }
                        done.push((shard_id, Ok(result)));
                    }
                    done
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join().map_err(|_| Error::WorkerPanicked {
                    section: "equilibrium enumeration",
                })
            })
            .collect::<Result<_>>()
    })?;

    let mut by_shard: Vec<(u64, Result<EnumerationResult>)> =
        per_worker.into_iter().flatten().collect();
    by_shard.sort_unstable_by_key(|(shard, _)| *shard);
    let mut merged = EnumerationResult {
        equilibria: Vec::new(),
        profiles_checked: 0,
    };
    for (_, r) in by_shard {
        let r = r?;
        merged.equilibria.extend(r.equilibria);
        merged.profiles_checked += r.profiles_checked;
    }
    // A stop-flag race can leave trailing shards unclaimed only after an
    // error, which the loop above has already surfaced.
    debug_assert_eq!(merged.profiles_checked, total);
    Ok(merged)
}

/// Fixed shard width of checkpointable scans ([`find_equilibria_parallel_resumable`]).
///
/// Unlike the work-stealing shard size of [`find_equilibria_parallel`] —
/// which may depend on the thread count because it never leaks into results
/// — the *checkpoint* unit must be machine-independent: a scan killed on an
/// 8-core host has to resume exactly where a 2-core host would. This is a
/// **persistence-format constant**, deliberately not aliased to the tunable
/// `MAX_SHARD_PROFILES` work-stealing knob (private): retuning that for
/// performance
/// must never reinterpret previously recorded shard ranges (the persistence
/// layer additionally pins this width in its stream fingerprints, so a
/// deliberate change here invalidates old checkpoints instead of silently
/// corrupting them).
pub const CHECKPOINT_SHARD_PROFILES: u64 = 256;

/// Number of checkpoint shards a scan of `space` consists of.
///
/// # Panics
///
/// Panics if the space exceeds `u64` profiles (far beyond anything
/// enumerable; real scans are bounded by `max_profiles` long before).
pub fn checkpoint_shard_count(space: &ProfileSpace) -> u64 {
    let total = space.profile_count();
    assert!(total <= u128::from(u64::MAX), "profile space exceeds u64");
    (total as u64).div_ceil(CHECKPOINT_SHARD_PROFILES)
}

/// In-order flush state shared by the resumable scan's workers: completed
/// shards park in `pending` until the contiguous run starting at `next` can
/// be handed to the sink and merged — so the sink observes shards in
/// ascending order no matter which worker finished first.
struct ShardFlush<'s> {
    next: u64,
    pending: BTreeMap<u64, EnumerationResult>,
    merged: EnumerationResult,
    sink: &'s mut (dyn FnMut(u64, &EnumerationResult) + Send),
}

impl ShardFlush<'_> {
    fn complete(&mut self, shard: u64, result: EnumerationResult) {
        self.pending.insert(shard, result);
        while let Some(result) = self.pending.remove(&self.next) {
            (self.sink)(self.next, &result);
            self.merged.equilibria.extend(result.equilibria);
            self.merged.profiles_checked += result.profiles_checked;
            self.next += 1;
        }
    }
}

/// Checkpointable variant of [`find_equilibria_parallel`]: the scan is cut
/// into fixed-width shards ([`CHECKPOINT_SHARD_PROFILES`] linear profile
/// indices each), `sink` is invoked once per completed shard **in ascending
/// shard order** (regardless of which worker finished first), and shards
/// `[0, completed_shards)` — persisted by a previous, possibly killed run —
/// are skipped entirely.
///
/// The returned result covers only the shards this call scanned; the caller
/// rebuilds the full result by concatenating the persisted prefix with it.
/// Because shards are merged by index, `prefix + resumed` is byte-identical
/// to an uninterrupted [`find_equilibria`] for every thread count and every
/// kill point (pinned by tests).
///
/// # Errors
///
/// Same conditions as [`find_equilibria`]; the earliest failing shard's
/// error is returned. Shards already handed to `sink` are genuinely
/// complete even on error — that is what makes them safe to persist.
pub fn find_equilibria_parallel_resumable(
    spec: &GameSpec,
    space: &ProfileSpace,
    max_profiles: u64,
    threads: usize,
    completed_shards: u64,
    sink: &mut (dyn FnMut(u64, &EnumerationResult) + Send),
) -> Result<EnumerationResult> {
    if space.profile_count() > max_profiles as u128 {
        return Err(Error::SearchBudgetExceeded {
            limit: max_profiles,
        });
    }
    let total = space.profile_count() as u64;
    let shards = checkpoint_shard_count(space);
    let empty = || EnumerationResult {
        equilibria: Vec::new(),
        profiles_checked: 0,
    };
    if completed_shards >= shards {
        return Ok(empty());
    }

    let threads = threads.max(1).min((shards - completed_shards) as usize);
    if threads <= 1 {
        let checker = StabilityChecker::new(spec);
        let mut worker = ShardWorker::new(spec, space);
        let mut merged = empty();
        for shard in completed_shards..shards {
            let lo = shard * CHECKPOINT_SHARD_PROFILES;
            let hi = (lo + CHECKPOINT_SHARD_PROFILES).min(total);
            let mut result = empty();
            worker.scan_linear_range(&checker, lo, hi, &mut result)?;
            sink(shard, &result);
            merged.equilibria.extend(result.equilibria);
            merged.profiles_checked += result.profiles_checked;
        }
        return Ok(merged);
    }

    let cursor = AtomicU64::new(completed_shards);
    let stop = AtomicBool::new(false);
    let flush = Mutex::new(ShardFlush {
        next: completed_shards,
        pending: BTreeMap::new(),
        merged: empty(),
        sink,
    });
    let first_error: Mutex<Option<(u64, Error)>> = Mutex::new(None);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let checker = StabilityChecker::new(spec);
                let mut worker = ShardWorker::new(spec, space);
                loop {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let shard = cursor.fetch_add(1, Ordering::Relaxed);
                    if shard >= shards {
                        break;
                    }
                    let lo = shard * CHECKPOINT_SHARD_PROFILES;
                    let hi = (lo + CHECKPOINT_SHARD_PROFILES).min(total);
                    let mut result = EnumerationResult {
                        equilibria: Vec::new(),
                        profiles_checked: 0,
                    };
                    match worker.scan_linear_range(&checker, lo, hi, &mut result) {
                        Ok(()) => {
                            flush
                                .lock()
                                // bbc-lint: allow(panic, poison means a sibling worker already panicked; joining that crash is the only sound move from a closure returning unit)
                                .expect("flush lock poisoned")
                                .complete(shard, result);
                        }
                        Err(e) => {
                            stop.store(true, Ordering::Relaxed);
                            // bbc-lint: allow(panic, poison means a sibling worker already panicked; joining that crash is the only sound move from a closure returning unit)
                            let mut slot = first_error.lock().expect("error lock poisoned");
                            if slot.as_ref().is_none_or(|(s, _)| shard < *s) {
                                *slot = Some((shard, e));
                            }
                            break;
                        }
                    }
                }
            });
        }
    });
    // Back in the caller's thread a poisoned lock can surface as a typed
    // error instead of a second panic.
    let worker_panicked = Error::WorkerPanicked {
        section: "resumable enumeration",
    };
    if let Some((_, e)) = first_error
        .into_inner()
        .map_err(|_| worker_panicked.clone())?
    {
        return Err(e);
    }
    let flush = flush.into_inner().map_err(|_| worker_panicked)?;
    debug_assert!(
        flush.pending.is_empty(),
        "error-free scan flushed every shard"
    );
    Ok(flush.merged)
}

/// One enumeration worker: a [`DistanceEngine`] plus the odometer state it
/// is synced to, reused across every shard the worker claims.
struct ShardWorker<'a> {
    spec: &'a GameSpec,
    space: &'a ProfileSpace,
    sizes: Vec<usize>,
    /// Current odometer digits (most significant = node 0); `None` until the
    /// first shard positions the engine.
    idx: Option<Vec<usize>>,
    engine: DistanceEngine<'a>,
}

impl<'a> ShardWorker<'a> {
    fn new(spec: &'a GameSpec, space: &'a ProfileSpace) -> Self {
        let n = spec.node_count();
        Self {
            spec,
            space,
            sizes: space.per_node.iter().map(Vec::len).collect(),
            idx: None,
            engine: DistanceEngine::new(spec, Configuration::empty(n)),
        }
    }

    /// Scans linear profile indices `[lo, hi)` in odometer order.
    ///
    /// The engine is patched **per changed digit**: seeking to `lo` rewires
    /// only the nodes whose digit differs from the engine's current state,
    /// and each subsequent odometer tick rebuilds only the digits the carry
    /// touched (usually one), so no profile ever re-clones every node's
    /// strategy.
    fn scan_linear_range(
        &mut self,
        checker: &StabilityChecker<'_>,
        lo: u64,
        hi: u64,
        result: &mut EnumerationResult,
    ) -> Result<()> {
        if lo >= hi {
            return Ok(());
        }
        self.seek(lo);
        let n = self.spec.node_count();
        for linear in lo..hi {
            result.profiles_checked += 1;
            if checker.is_stable_with_engine(&mut self.engine)? {
                result.equilibria.push(self.engine.config().clone());
            }
            if linear + 1 == hi {
                break;
            }
            // Odometer tick: increment from the least significant digit,
            // patching exactly the digits the carry resets.
            let mut d = n - 1;
            loop {
                // bbc-lint: allow(panic, scan_linear_range seeks before ticking, so idx is Some by construction)
                let idx = self.idx.as_mut().expect("seek positioned the odometer");
                idx[d] += 1;
                if idx[d] < self.sizes[d] {
                    self.set_digit(d);
                    break;
                }
                idx[d] = 0;
                // A one-candidate digit wraps 0 → 0: the strategy is
                // unchanged, and re-applying it would needlessly invalidate
                // every cached row the node touches.
                if self.sizes[d] > 1 {
                    self.set_digit(d);
                }
                debug_assert!(d > 0, "odometer overflow before hi");
                d -= 1;
            }
        }
        Ok(())
    }

    /// Positions the odometer (and engine) at linear profile index `target`,
    /// patching only the digits that differ from the current position.
    fn seek(&mut self, target: u64) {
        let n = self.spec.node_count();
        let mut digits = vec![0usize; n];
        let mut rem = target;
        for d in (0..n).rev() {
            let size = self.sizes[d] as u64;
            digits[d] = (rem % size) as usize;
            rem /= size;
        }
        debug_assert_eq!(rem, 0, "linear index exceeds the profile space");
        match &self.idx {
            Some(current) => {
                let changed: Vec<usize> = (0..n).filter(|&d| current[d] != digits[d]).collect();
                self.idx = Some(digits);
                for d in changed {
                    self.set_digit(d);
                }
            }
            None => {
                self.idx = Some(digits);
                for d in 0..n {
                    self.set_digit(d);
                }
            }
        }
    }

    /// Rewires node `d` to its current odometer digit's strategy.
    fn set_digit(&mut self, d: usize) {
        // bbc-lint: allow(panic, both callers write self.idx = Some(..) before calling set_digit)
        let i = self.idx.as_ref().expect("odometer positioned")[d];
        let strategy = self.space.per_node[d][i].clone();
        self.engine
            .apply_strategy(NodeId::new(d), strategy)
            // bbc-lint: allow(panic, ProfileSpace constructors validate every candidate against the spec)
            .expect("candidates pre-validated");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn all_strategies_uniform_counts() {
        // (4,1): empty + 3 singletons.
        let spec = GameSpec::uniform(4, 1);
        let s = all_strategies(&spec, v(0), 1000).unwrap();
        assert_eq!(s.len(), 4);
        // (4,2): empty + 3 singletons + 3 pairs.
        let spec = GameSpec::uniform(4, 2);
        let s = all_strategies(&spec, v(0), 1000).unwrap();
        assert_eq!(s.len(), 7);
        assert_eq!(s[0], Vec::<NodeId>::new());
    }

    #[test]
    fn all_strategies_respects_nonuniform_costs() {
        let spec = GameSpec::builder(4)
            .default_budget(3)
            .link_cost(0, 1, 3)
            .link_cost(0, 2, 2)
            .build()
            .unwrap();
        let s = all_strategies(&spec, v(0), 1000).unwrap();
        // Affordable subsets of {1:3, 2:2, 3:1}: {}, {1}, {2}, {3}, {2,3}.
        assert_eq!(s.len(), 5);
        assert!(s.contains(&vec![v(2), v(3)]));
        assert!(!s.contains(&vec![v(1), v(3)]));
    }

    #[test]
    fn all_strategies_cap_enforced() {
        let spec = GameSpec::uniform(20, 10);
        assert!(matches!(
            all_strategies(&spec, v(0), 100),
            Err(Error::SearchBudgetExceeded { limit: 100 })
        ));
    }

    #[test]
    fn full_space_counts_profiles() {
        let spec = GameSpec::uniform(3, 1);
        let space = ProfileSpace::full(&spec, 100).unwrap();
        // Each node: empty + 2 singletons = 3 strategies; 3^3 = 27 profiles.
        assert_eq!(space.profile_count(), 27);
    }

    #[test]
    fn finds_all_equilibria_of_tiny_uniform_game() {
        // (3,1)-uniform: stable graphs are exactly the two directed
        // triangles (each node must buy its one affordable useful link, and
        // the graph must be strongly connected with out-degree 1).
        let spec = GameSpec::uniform(3, 1);
        let space = ProfileSpace::full(&spec, 100).unwrap();
        let result = find_equilibria(&spec, &space, 1000).unwrap();
        assert_eq!(result.profiles_checked, 27);
        assert_eq!(
            result.equilibria.len(),
            2,
            "two orientations of the triangle"
        );
        for eq in &result.equilibria {
            assert!(bbc_graph::scc::is_strongly_connected(&eq.to_graph(&spec)));
        }
    }

    #[test]
    fn parallel_matches_sequential_byte_identically() {
        // The shard merge is by linear start index, so the parallel scan
        // must reproduce the sequential result *exactly* — same equilibria
        // in the same enumeration order — for every worker count.
        let spec = GameSpec::uniform(4, 1);
        let space = ProfileSpace::full(&spec, 1000).unwrap();
        let seq = find_equilibria(&spec, &space, 100_000).unwrap();
        for threads in [1, 2, 4, 7] {
            let par = find_equilibria_parallel(&spec, &space, 100_000, threads).unwrap();
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn sharding_covers_the_full_odometer_space() {
        // A one-strategy first digit starves the old first-digit split but
        // must not cap work-stealing sharding: restrict node 0 to a single
        // strategy and check multi-thread runs still match sequentially.
        let spec = GameSpec::uniform(4, 1);
        let full = ProfileSpace::full(&spec, 1000).unwrap();
        let mut candidates: Vec<Vec<Vec<NodeId>>> =
            (0..4).map(|u| full.candidates(v(u)).to_vec()).collect();
        candidates[0] = vec![vec![v(1)]];
        let space = ProfileSpace::from_candidates(&spec, candidates).unwrap();
        let seq = find_equilibria(&spec, &space, 100_000).unwrap();
        assert_eq!(seq.profiles_checked, 64, "1 * 4^3 profiles");
        for threads in [2, 3, 8] {
            let par = find_equilibria_parallel(&spec, &space, 100_000, threads).unwrap();
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn resumable_scan_matches_sequential_and_sinks_in_order() {
        // (4,2): 7 strategies per node, 2401 profiles ⇒ 10 checkpoint
        // shards — enough to exercise out-of-order completion and the
        // ordered flush.
        let spec = GameSpec::uniform(4, 2);
        let space = ProfileSpace::full(&spec, 1000).unwrap();
        assert_eq!(checkpoint_shard_count(&space), 10);
        let seq = find_equilibria(&spec, &space, 100_000).unwrap();
        for threads in [1usize, 2, 4] {
            let mut shards_seen = Vec::new();
            let mut sunk = EnumerationResult {
                equilibria: Vec::new(),
                profiles_checked: 0,
            };
            let mut sink = |shard: u64, r: &EnumerationResult| {
                shards_seen.push(shard);
                sunk.equilibria.extend(r.equilibria.iter().cloned());
                sunk.profiles_checked += r.profiles_checked;
            };
            let merged =
                find_equilibria_parallel_resumable(&spec, &space, 100_000, threads, 0, &mut sink)
                    .unwrap();
            assert_eq!(merged, seq, "threads={threads}");
            assert_eq!(sunk, seq, "threads={threads}: sink saw every shard");
            assert_eq!(
                shards_seen,
                (0..10).collect::<Vec<u64>>(),
                "threads={threads}: ascending, contiguous shard order"
            );
        }
    }

    #[test]
    fn killed_scan_resumes_byte_identically_from_any_shard() {
        // Simulate a kill after k persisted shards: the persisted prefix
        // plus a resumed scan over the rest must reproduce the sequential
        // result byte for byte — for every cut point and thread count.
        let spec = GameSpec::uniform(4, 2);
        let space = ProfileSpace::full(&spec, 1000).unwrap();
        let seq = find_equilibria(&spec, &space, 100_000).unwrap();
        // Record the full per-shard results once.
        let mut per_shard: Vec<EnumerationResult> = Vec::new();
        let mut record = |_: u64, r: &EnumerationResult| per_shard.push(r.clone());
        find_equilibria_parallel_resumable(&spec, &space, 100_000, 3, 0, &mut record).unwrap();
        assert_eq!(per_shard.len(), 10);
        for cut in [0usize, 1, 4, 9, 10] {
            for threads in [1usize, 4] {
                let mut rebuilt = EnumerationResult {
                    equilibria: Vec::new(),
                    profiles_checked: 0,
                };
                for r in &per_shard[..cut] {
                    rebuilt.equilibria.extend(r.equilibria.iter().cloned());
                    rebuilt.profiles_checked += r.profiles_checked;
                }
                let mut sink = |_: u64, _: &EnumerationResult| {};
                let resumed = find_equilibria_parallel_resumable(
                    &spec, &space, 100_000, threads, cut as u64, &mut sink,
                )
                .unwrap();
                rebuilt.equilibria.extend(resumed.equilibria);
                rebuilt.profiles_checked += resumed.profiles_checked;
                assert_eq!(rebuilt, seq, "cut={cut} threads={threads}");
            }
        }
    }

    #[test]
    fn empty_candidate_list_is_an_error_not_a_panic() {
        let spec = GameSpec::uniform(3, 1);
        let bad =
            ProfileSpace::from_candidates(&spec, vec![vec![vec![v(1)]], vec![], vec![vec![v(0)]]]);
        assert!(matches!(
            bad,
            Err(Error::EmptyCandidateSet { node }) if node == v(1)
        ));
    }

    #[test]
    fn profile_limit_enforced_up_front() {
        let spec = GameSpec::uniform(4, 1);
        let space = ProfileSpace::full(&spec, 1000).unwrap();
        assert!(matches!(
            find_equilibria(&spec, &space, 10),
            Err(Error::SearchBudgetExceeded { limit: 10 })
        ));
    }

    #[test]
    fn restricted_space_validates_candidates() {
        let spec = GameSpec::uniform(3, 1);
        let bad = ProfileSpace::from_candidates(
            &spec,
            vec![vec![vec![v(0)]], vec![vec![]], vec![vec![]]],
        );
        assert!(matches!(bad, Err(Error::SelfLink { .. })));
    }

    #[test]
    fn restricted_space_scan_checks_full_deviations() {
        // Restrict node 0 to the empty strategy only; in a (3,1) game that
        // profile is NOT stable because node 0's full deviation space lets
        // it link out. The scan must therefore report no equilibria.
        let spec = GameSpec::uniform(3, 1);
        let space = ProfileSpace::from_candidates(
            &spec,
            vec![
                vec![vec![]],
                vec![vec![v(0)], vec![v(2)]],
                vec![vec![v(0)], vec![v(1)]],
            ],
        )
        .unwrap();
        let result = find_equilibria(&spec, &space, 1000).unwrap();
        assert_eq!(result.profiles_checked, 4);
        assert!(result.equilibria.is_empty());
    }
}

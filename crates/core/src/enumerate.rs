//! Exhaustive equilibrium enumeration over joint strategy spaces.
//!
//! The no-equilibrium results (Theorems 1, 2, 7) are *universal* statements:
//! no profile in an exponentially large product space is stable. For the
//! gadget instances the per-node strategy spaces collapse to small candidate
//! sets, and the product becomes enumerable. [`ProfileSpace`] describes such
//! a product; [`find_equilibria`] scans it, checking every profile for
//! stability against the **full, unrestricted** deviation space — the
//! restriction only limits which profiles are *candidates*, never what they
//! may deviate to.

use crate::{Configuration, DistanceEngine, Error, GameSpec, NodeId, Result, StabilityChecker};

/// Every feasible strategy for node `u`: all subsets of affordable targets
/// whose total link cost is within budget, in deterministic order (by size,
/// then lexicographically).
///
/// # Errors
///
/// Returns [`Error::SearchBudgetExceeded`] if more than `cap` strategies
/// exist; the subset lattice grows as `2^n` and callers must opt in to large
/// enumerations explicitly.
pub fn all_strategies(spec: &GameSpec, u: NodeId, cap: u64) -> Result<Vec<Vec<NodeId>>> {
    let pool = spec.affordable_targets(u);
    let budget = spec.budget(u);
    let mut out: Vec<Vec<NodeId>> = Vec::new();
    let mut stack: Vec<NodeId> = Vec::new();
    #[allow(clippy::too_many_arguments)]
    fn rec(
        spec: &GameSpec,
        u: NodeId,
        pool: &[NodeId],
        from: usize,
        spent: u64,
        budget: u64,
        stack: &mut Vec<NodeId>,
        out: &mut Vec<Vec<NodeId>>,
        cap: u64,
    ) -> Result<()> {
        if out.len() as u64 >= cap {
            return Err(Error::SearchBudgetExceeded { limit: cap });
        }
        out.push(stack.clone());
        for i in from..pool.len() {
            let price = spec.link_cost(u, pool[i]);
            if spent + price <= budget {
                stack.push(pool[i]);
                rec(spec, u, pool, i + 1, spent + price, budget, stack, out, cap)?;
                stack.pop();
            }
        }
        Ok(())
    }
    rec(spec, u, &pool, 0, 0, budget, &mut stack, &mut out, cap)?;
    out.sort_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
    Ok(out)
}

/// A product of per-node candidate strategy sets.
#[derive(Clone, Debug)]
pub struct ProfileSpace {
    per_node: Vec<Vec<Vec<NodeId>>>,
}

impl ProfileSpace {
    /// The full joint strategy space of the game.
    ///
    /// # Errors
    ///
    /// Propagates the per-node cap from [`all_strategies`].
    pub fn full(spec: &GameSpec, per_node_cap: u64) -> Result<Self> {
        let per_node = NodeId::all(spec.node_count())
            .map(|u| all_strategies(spec, u, per_node_cap))
            .collect::<Result<Vec<_>>>()?;
        Ok(Self { per_node })
    }

    /// A restricted space from explicit per-node candidate strategy lists.
    ///
    /// Each strategy is validated against `spec`.
    ///
    /// # Errors
    ///
    /// Returns the first validation failure, or a dimension mismatch.
    pub fn from_candidates(spec: &GameSpec, candidates: Vec<Vec<Vec<NodeId>>>) -> Result<Self> {
        if candidates.len() != spec.node_count() {
            return Err(Error::DimensionMismatch {
                expected: spec.node_count(),
                actual: candidates.len(),
            });
        }
        for (u, strategies) in candidates.iter().enumerate() {
            assert!(
                !strategies.is_empty(),
                "node v{u} has no candidate strategies"
            );
            for s in strategies {
                spec.validate_strategy(NodeId::new(u), s)?;
            }
        }
        let per_node = candidates
            .into_iter()
            .map(|mut ss| {
                for s in &mut ss {
                    s.sort_unstable();
                }
                ss
            })
            .collect();
        Ok(Self { per_node })
    }

    /// Candidate strategies of one node.
    pub fn candidates(&self, u: NodeId) -> &[Vec<NodeId>] {
        &self.per_node[u.index()]
    }

    /// Number of joint profiles in the product.
    pub fn profile_count(&self) -> u128 {
        self.per_node.iter().map(|s| s.len() as u128).product()
    }
}

/// Result of an exhaustive equilibrium scan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EnumerationResult {
    /// Every stable profile found, in enumeration order.
    pub equilibria: Vec<Configuration>,
    /// Profiles examined (equals the space size unless an error aborted).
    pub profiles_checked: u64,
}

/// Scans every profile of `space`, returning all pure Nash equilibria.
///
/// Stability is checked against the full deviation space via the exact
/// best-response search, regardless of how `space` was restricted.
///
/// # Errors
///
/// - [`Error::SearchBudgetExceeded`] if `space` holds more than
///   `max_profiles` profiles (checked up front) or some node's deviation
///   search overruns its internal limit.
pub fn find_equilibria(
    spec: &GameSpec,
    space: &ProfileSpace,
    max_profiles: u64,
) -> Result<EnumerationResult> {
    if space.profile_count() > max_profiles as u128 {
        return Err(Error::SearchBudgetExceeded {
            limit: max_profiles,
        });
    }
    let checker = StabilityChecker::new(spec);
    let mut result = EnumerationResult {
        equilibria: Vec::new(),
        profiles_checked: 0,
    };
    scan_range(
        spec,
        space,
        &checker,
        0,
        space.per_node[0].len(),
        &mut result,
    )?;
    Ok(result)
}

/// Parallel variant of [`find_equilibria`]: splits the first node's
/// candidate list across `threads` OS threads.
///
/// Deterministic: results are merged in first-index order.
///
/// # Errors
///
/// Same conditions as [`find_equilibria`].
pub fn find_equilibria_parallel(
    spec: &GameSpec,
    space: &ProfileSpace,
    max_profiles: u64,
    threads: usize,
) -> Result<EnumerationResult> {
    if space.profile_count() > max_profiles as u128 {
        return Err(Error::SearchBudgetExceeded {
            limit: max_profiles,
        });
    }
    let first_len = space.per_node[0].len();
    let threads = threads.max(1).min(first_len);
    let chunk = first_len.div_ceil(threads);
    let results: Vec<Result<EnumerationResult>> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let lo = t * chunk;
            let hi = ((t + 1) * chunk).min(first_len);
            handles.push(scope.spawn(move || {
                let checker = StabilityChecker::new(spec);
                let mut result = EnumerationResult {
                    equilibria: Vec::new(),
                    profiles_checked: 0,
                };
                scan_range(spec, space, &checker, lo, hi, &mut result)?;
                Ok(result)
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("enumeration thread panicked"))
            .collect()
    });
    let mut merged = EnumerationResult {
        equilibria: Vec::new(),
        profiles_checked: 0,
    };
    for r in results {
        let r = r?;
        merged.equilibria.extend(r.equilibria);
        merged.profiles_checked += r.profiles_checked;
    }
    Ok(merged)
}

/// Scans profiles whose first-node strategy index lies in `[first_lo,
/// first_hi)`.
///
/// One [`DistanceEngine`] is threaded through the whole range: stepping the
/// odometer to the next profile usually rewires a single node, so the engine
/// diff-syncs one arc slab and keeps every distance row the change could not
/// have affected.
fn scan_range(
    spec: &GameSpec,
    space: &ProfileSpace,
    checker: &StabilityChecker<'_>,
    first_lo: usize,
    first_hi: usize,
    result: &mut EnumerationResult,
) -> Result<()> {
    let n = spec.node_count();
    let sizes: Vec<usize> = space.per_node.iter().map(Vec::len).collect();
    let mut idx = vec![0usize; n];
    idx[0] = first_lo;
    if first_lo >= first_hi {
        return Ok(());
    }
    let mut engine = DistanceEngine::new(spec, Configuration::empty(n));
    loop {
        let lists: Vec<Vec<NodeId>> = (0..n).map(|u| space.per_node[u][idx[u]].clone()).collect();
        let config = Configuration::from_strategies(spec, lists).expect("candidates pre-validated");
        result.profiles_checked += 1;
        engine.sync_to(&config);
        if checker.is_stable_with_engine(&mut engine)? {
            result.equilibria.push(config);
        }
        // Odometer increment, most-significant digit = node 0 bounded by
        // [first_lo, first_hi).
        let mut d = n;
        loop {
            if d == 0 {
                return Ok(());
            }
            d -= 1;
            idx[d] += 1;
            let limit = if d == 0 { first_hi } else { sizes[d] };
            if idx[d] < limit {
                break;
            }
            idx[d] = if d == 0 { first_hi } else { 0 };
            if d == 0 {
                return Ok(());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn all_strategies_uniform_counts() {
        // (4,1): empty + 3 singletons.
        let spec = GameSpec::uniform(4, 1);
        let s = all_strategies(&spec, v(0), 1000).unwrap();
        assert_eq!(s.len(), 4);
        // (4,2): empty + 3 singletons + 3 pairs.
        let spec = GameSpec::uniform(4, 2);
        let s = all_strategies(&spec, v(0), 1000).unwrap();
        assert_eq!(s.len(), 7);
        assert_eq!(s[0], Vec::<NodeId>::new());
    }

    #[test]
    fn all_strategies_respects_nonuniform_costs() {
        let spec = GameSpec::builder(4)
            .default_budget(3)
            .link_cost(0, 1, 3)
            .link_cost(0, 2, 2)
            .build()
            .unwrap();
        let s = all_strategies(&spec, v(0), 1000).unwrap();
        // Affordable subsets of {1:3, 2:2, 3:1}: {}, {1}, {2}, {3}, {2,3}.
        assert_eq!(s.len(), 5);
        assert!(s.contains(&vec![v(2), v(3)]));
        assert!(!s.contains(&vec![v(1), v(3)]));
    }

    #[test]
    fn all_strategies_cap_enforced() {
        let spec = GameSpec::uniform(20, 10);
        assert!(matches!(
            all_strategies(&spec, v(0), 100),
            Err(Error::SearchBudgetExceeded { limit: 100 })
        ));
    }

    #[test]
    fn full_space_counts_profiles() {
        let spec = GameSpec::uniform(3, 1);
        let space = ProfileSpace::full(&spec, 100).unwrap();
        // Each node: empty + 2 singletons = 3 strategies; 3^3 = 27 profiles.
        assert_eq!(space.profile_count(), 27);
    }

    #[test]
    fn finds_all_equilibria_of_tiny_uniform_game() {
        // (3,1)-uniform: stable graphs are exactly the two directed
        // triangles (each node must buy its one affordable useful link, and
        // the graph must be strongly connected with out-degree 1).
        let spec = GameSpec::uniform(3, 1);
        let space = ProfileSpace::full(&spec, 100).unwrap();
        let result = find_equilibria(&spec, &space, 1000).unwrap();
        assert_eq!(result.profiles_checked, 27);
        assert_eq!(
            result.equilibria.len(),
            2,
            "two orientations of the triangle"
        );
        for eq in &result.equilibria {
            assert!(bbc_graph::scc::is_strongly_connected(&eq.to_graph(&spec)));
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let spec = GameSpec::uniform(4, 1);
        let space = ProfileSpace::full(&spec, 1000).unwrap();
        let seq = find_equilibria(&spec, &space, 100_000).unwrap();
        for threads in [1, 2, 4, 7] {
            let par = find_equilibria_parallel(&spec, &space, 100_000, threads).unwrap();
            assert_eq!(par.profiles_checked, seq.profiles_checked);
            let mut a = par.equilibria.clone();
            let mut b = seq.equilibria.clone();
            a.sort_by_key(|c| format!("{c:?}"));
            b.sort_by_key(|c| format!("{c:?}"));
            assert_eq!(a, b, "threads={threads}");
        }
    }

    #[test]
    fn profile_limit_enforced_up_front() {
        let spec = GameSpec::uniform(4, 1);
        let space = ProfileSpace::full(&spec, 1000).unwrap();
        assert!(matches!(
            find_equilibria(&spec, &space, 10),
            Err(Error::SearchBudgetExceeded { limit: 10 })
        ));
    }

    #[test]
    fn restricted_space_validates_candidates() {
        let spec = GameSpec::uniform(3, 1);
        let bad = ProfileSpace::from_candidates(
            &spec,
            vec![vec![vec![v(0)]], vec![vec![]], vec![vec![]]],
        );
        assert!(matches!(bad, Err(Error::SelfLink { .. })));
    }

    #[test]
    fn restricted_space_scan_checks_full_deviations() {
        // Restrict node 0 to the empty strategy only; in a (3,1) game that
        // profile is NOT stable because node 0's full deviation space lets
        // it link out. The scan must therefore report no equilibria.
        let spec = GameSpec::uniform(3, 1);
        let space = ProfileSpace::from_candidates(
            &spec,
            vec![
                vec![vec![]],
                vec![vec![v(0)], vec![v(2)]],
                vec![vec![v(0)], vec![v(1)]],
            ],
        )
        .unwrap();
        let result = find_equilibria(&spec, &space, 1000).unwrap();
        assert_eq!(result.profiles_checked, 4);
        assert!(result.equilibria.is_empty());
    }
}

//! The CSR distance engine: a shared, cached shortest-path substrate.
//!
//! Every quantity this workspace measures — node costs, best responses,
//! dynamics walks, stability sweeps, equilibrium enumeration — bottoms out in
//! repeated single-source shortest-path runs over the configuration graph.
//! [`DistanceEngine`] is the one place those runs happen. It keeps:
//!
//! * a [`CsrGraph`] mirror of the bound configuration, patched **in place**
//!   when one node rewires (a best-response move rewrites one arc slab, not
//!   the graph);
//! * a memo of the strategy-independent deviation rows `d_{G∖u}(c, ·)` — the
//!   rows Lemmas 3–5 price every strategy of `u` with — plus each row's
//!   *touched set* (the nodes whose out-arcs the traversal expanded). A
//!   dynamics step that moves node `m` invalidates only rows whose touched
//!   set contains `m`: an untouched node's out-links cannot affect any
//!   cached distance, and rewiring `m`'s out-links never changes whether `m`
//!   itself is reached;
//! * a memo of full [`crate::best_response`] outcomes per node, reused until
//!   a row it depends on is invalidated or the node itself moves — in the
//!   tail of a converging walk this turns `n − 1` confirmation tests per
//!   round into cache hits;
//! * per-node distance rows from `u` in `G` (the [`crate::Evaluator`]
//!   substrate), cached under the same invalidation rule.
//!
//! Cache-invalidation rules, in one table:
//!
//! | cached item                | invalidated by a rewire of `m` when |
//! |----------------------------|--------------------------------------|
//! | oracle row `d_{G∖u}(c,·)` | `m ≠ u` and `m` ∈ row's touched set |
//! | best-response outcome of `u` | any of `u`'s rows invalidated, or `m = u` |
//! | eval row `d_G(u,·)`        | `m` ∈ row's touched set (`m = u` always is) |
//!
//! # Node churn
//!
//! The engine also tracks a **live membership**: [`DistanceEngine::remove_node`]
//! departs a peer (its links and every link *to* it are stripped, and it
//! drops out of all cost aggregates), [`DistanceEngine::add_node`] admits or
//! re-admits one. A join/leave is a sequence of ordinary strategy patches —
//! each covered by the touched-set rule above — plus a wholesale drop of the
//! membership-dependent aggregates (outcome memos, cached eval costs, masked
//! weighted-target lists). Distance rows untouched by the patches survive,
//! and a departed node's own `d_{G∖u}` rows always do. Under partial
//! membership, cost aggregation masks departed targets (they contribute
//! neither distances nor disconnection penalties) and the best-response
//! search draws candidates from live nodes only. Every churn op
//! canonicalizes the CSR layout, so [`DistanceEngine::state_digest`] after
//! a remove/re-add round trip is byte-identical to a fresh
//! [`DistanceEngine::with_membership`] build of the same state.
//!
//! Row filling can be spread across OS threads with
//! [`DistanceEngine::prefill_oracle_rows`] (`std::thread::scope`; no new
//! dependencies): traversals read the shared CSR immutably and results are
//! written back in deterministic `(u, candidate)` order, so thread count
//! never changes any value.

use bbc_graph::{
    BitSet, BlockEnvelope, BlockPartition, ClampedBfs, ClampedDijkstra, ConnectivityScratch,
    CsrBfs, CsrDijkstra, CsrGraph, RowWord, UNREACHABLE,
};

use crate::{
    best_response::{
        build_landmark_bounds, min_into, run_search, run_search_landmark, weighted_targets_of,
        LandmarkScratch, OracleView, SearchScratch,
    },
    eval::{cost_from_distances, cost_from_distances_masked},
    BestResponseOptions, BestResponseOutcome, Configuration, Error, GameSpec, LandmarkPolicy,
    NodeId, Result,
};

/// The word width of the engine's cached deviation rows.
///
/// Selected per spec at construction via a checked `n·M` bound: the narrow
/// tier is valid exactly when every clamped row entry *and* every plain row
/// sum (at most `n·M`) fits in 32 bits. Both tiers compute bit-identical
/// decisions, costs, and digests — the cross-width differential suite pins
/// this — so the tier is purely a bandwidth choice.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RowTier {
    /// 32-bit rows: half the memory traffic in the search and BFS hot
    /// loops. Requires `n·M ≤ u32::MAX`.
    U32,
    /// 64-bit rows: always valid (the pre-tier behavior).
    U64,
}

impl RowTier {
    /// The tier [`DistanceEngine::new`] picks for `spec`: [`RowTier::U32`]
    /// whenever the checked product `n·M` fits `u32`, else [`RowTier::U64`].
    /// Non-uniform weights and lengths fall back automatically because they
    /// inflate the spec's penalty past the bound.
    pub fn auto(spec: &GameSpec) -> Self {
        if Self::u32_fits(spec) {
            RowTier::U32
        } else {
            RowTier::U64
        }
    }

    /// `true` when the u32 tier can represent every clamped row entry and
    /// plain row sum of `spec` without wrapping.
    fn u32_fits(spec: &GameSpec) -> bool {
        (spec.node_count() as u64)
            .checked_mul(spec.penalty())
            .is_some_and(|nm| nm <= u64::from(u32::MAX))
    }
}

/// A filled row in flight from a worker thread back to the cache:
/// `(deviating node, candidate index, clamped through-row, touched set)`.
type FilledRow<W> = (usize, usize, Vec<W>, BitSet);

/// One cached shortest-path row plus its invalidation metadata.
#[derive(Clone, Debug)]
struct RowSlot<W> {
    valid: bool,
    /// Oracle slots hold the *clamped through-row* `ℓ(u,c) + d_{G∖u}(c,·)`
    /// (penalty for unreachable entries) at the engine's row width; eval
    /// slots hold raw `u64` distances with [`bbc_graph::UNREACHABLE`]
    /// preserved.
    dist: Vec<W>,
    /// Nodes whose out-arcs the traversal expanded.
    touched: BitSet,
}

impl<W: RowWord> RowSlot<W> {
    fn new(n: usize) -> Self {
        Self {
            valid: false,
            dist: vec![W::ZERO; n],
            touched: BitSet::new(n),
        }
    }
}

/// Per-deviating-node oracle cache: the static candidate pool and one
/// [`RowSlot`] per candidate, plus the memoized search outcome.
#[derive(Debug)]
struct OracleCache<W> {
    init: bool,
    candidates: Vec<NodeId>,
    prices: Vec<u64>,
    weighted_targets: Vec<(u32, u64)>,
    budget: u64,
    rows: Vec<RowSlot<W>>,
    outcome: Option<(BestResponseOptions, BestResponseOutcome)>,
    /// Whether the memoized outcome's graph-dependence is fully captured by
    /// the valid rows' touched sets. The exact path materializes every live
    /// candidate row, so its memos always are; a landmark-bounded search may
    /// prune a candidate without ever computing its row, in which case the
    /// memo also depends on the *bounds* that stood in for it — such a memo
    /// cannot ride the touched-set invalidation rule and must be dropped on
    /// any move.
    outcome_complete: bool,
}

impl<W> Default for OracleCache<W> {
    fn default() -> Self {
        Self {
            init: false,
            candidates: Vec::new(),
            prices: Vec::new(),
            weighted_targets: Vec::new(),
            budget: 0,
            rows: Vec::new(),
            outcome: None,
            outcome_complete: true,
        }
    }
}

/// Engine-owned landmark bound layer: a handful of full-`G` clamped
/// distance rows (shared across every deviating node) plus the coarse
/// block-pair envelope derived from them. Rows follow the standard
/// touched-set invalidation rule — with **no** mover exemption, since a
/// landmark row covers the full graph including the mover's arcs — and are
/// refreshed lazily at the next landmark-path query. The landmark *set* is
/// re-picked (and every row dropped) only when the live membership or the
/// policy changes, so ordinary walk steps keep reusing warm rows.
#[derive(Debug)]
struct LandmarkCache<W> {
    /// Membership version the landmark set was picked against (0 = never
    /// picked; real versions start at 1).
    version: u64,
    landmarks: Vec<NodeId>,
    rows: Vec<RowSlot<W>>,
    partition: BlockPartition,
    envelope: BlockEnvelope<W>,
    /// `false` whenever some contributing row changed since the envelope
    /// was last rebuilt.
    env_valid: bool,
}

/// Per-node cache of the membership-masked weighted target list, stamped
/// with the membership version it was built against.
#[derive(Clone, Debug, Default)]
struct MaskedTargets {
    /// [`DistanceEngine`] membership version this list reflects (0 = never
    /// built; versions start at 1).
    version: u64,
    targets: Vec<(u32, u64)>,
}

/// Cache effectiveness counters (monotone; see [`DistanceEngine::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Shortest-path traversals actually run for oracle rows.
    pub oracle_rows_computed: u64,
    /// Oracle rows served from cache inside a best-response call.
    pub oracle_row_hits: u64,
    /// Whole best-response outcomes served from cache.
    pub outcome_hits: u64,
    /// Best-response searches actually run.
    pub searches_run: u64,
    /// Cached rows invalidated by strategy patches (deviation, eval, and
    /// landmark rows alike — all follow the same touched-set rule).
    pub rows_invalidated: u64,
    /// Strategy patches applied to the CSR mirror.
    pub patches_applied: u64,
    /// Traversals run for evaluator (distance-from-`u`) rows.
    pub eval_rows_computed: u64,
    /// Full-graph traversals run to (re)fill cached landmark rows. Separate
    /// from [`EngineStats::oracle_rows_computed`]: landmark rows are shared
    /// across every deviating node, deviation rows are per-node.
    pub landmark_rows_computed: u64,
}

impl EngineStats {
    /// Publishes these counters into `reg` under `engine/`, with the
    /// derived cache hit-rate gauges (`engine/oracle_hit_rate_permille`,
    /// `engine/outcome_hit_rate_permille`) the ROADMAP's tuning work reads.
    pub fn publish_metrics(&self, reg: &mut bbc_obs::Registry) {
        reg.set_counter("engine/searches_run", self.searches_run);
        reg.set_counter("engine/outcome_hits", self.outcome_hits);
        reg.set_counter("engine/oracle_rows_computed", self.oracle_rows_computed);
        reg.set_counter("engine/oracle_row_hits", self.oracle_row_hits);
        reg.set_counter("engine/eval_rows_computed", self.eval_rows_computed);
        reg.set_counter("engine/landmark_rows_computed", self.landmark_rows_computed);
        reg.set_counter("engine/rows_invalidated", self.rows_invalidated);
        reg.set_counter("engine/patches_applied", self.patches_applied);
        reg.set_gauge(
            "engine/oracle_hit_rate_permille",
            bbc_obs::permille(
                self.oracle_row_hits,
                self.oracle_row_hits + self.oracle_rows_computed,
            ),
        );
        reg.set_gauge(
            "engine/outcome_hit_rate_permille",
            bbc_obs::permille(self.outcome_hits, self.outcome_hits + self.searches_run),
        );
    }
}

/// A shared, cached, incrementally-patched shortest-path engine bound to one
/// game and tracking one configuration.
///
/// Create it once per walk/scan and thread it through every step; see the
/// module docs for what is cached and when it is invalidated.
///
/// # Examples
///
/// ```
/// use bbc_core::{BestResponseOptions, Configuration, DistanceEngine, GameSpec, NodeId};
///
/// let spec = GameSpec::uniform(6, 1);
/// let mut engine = DistanceEngine::new(&spec, Configuration::empty(6));
/// let options = BestResponseOptions::default();
/// let out = engine.best_response(NodeId::new(0), &options)?;
/// assert!(out.improves(), "a disconnected node always wants a link");
/// // Re-asking without a graph change is a cache hit.
/// let again = engine.best_response(NodeId::new(0), &options)?;
/// assert_eq!(out, again);
/// assert_eq!(engine.stats().outcome_hits, 1);
/// # Ok::<(), bbc_core::Error>(())
/// ```
#[derive(Debug)]
pub struct DistanceEngine<'a> {
    inner: EngineInner<'a>,
}

/// The tier-monomorphized engine body behind [`DistanceEngine`].
#[derive(Debug)]
enum EngineInner<'a> {
    U32(EngineCore<'a, u32>),
    U64(EngineCore<'a, u64>),
}

/// Dispatches one method body into the active tier arm. Every public
/// engine method goes through here; the bodies themselves are written once,
/// generically, in [`EngineCore`].
macro_rules! tiered {
    ($self:expr, $e:ident => $body:expr) => {
        match &$self.inner {
            EngineInner::U32($e) => $body,
            EngineInner::U64($e) => $body,
        }
    };
    (mut $self:expr, $e:ident => $body:expr) => {
        match &mut $self.inner {
            EngineInner::U32($e) => $body,
            EngineInner::U64($e) => $body,
        }
    };
}

#[derive(Debug)]
struct EngineCore<'a, W: RowWord> {
    spec: &'a GameSpec,
    config: Configuration,
    csr: CsrGraph,
    /// The disconnection penalty at the row width (the clamp every oracle
    /// row is filled against). The tier check at construction guarantees
    /// the conversion is exact.
    penalty: W,
    bfs: ClampedBfs<W>,
    dijkstra: ClampedDijkstra<W>,
    /// Raw-`u64` traversals for evaluator rows (`d_G(u,·)` with
    /// [`bbc_graph::UNREACHABLE`] preserved — the public
    /// [`DistanceEngine::distances_from`] contract is width-independent).
    eval_bfs: CsrBfs,
    eval_dijkstra: CsrDijkstra,
    conn: ConnectivityScratch,
    oracle: Vec<OracleCache<W>>,
    eval_rows: Vec<RowSlot<u64>>,
    eval_costs: Vec<Option<u64>>,
    /// Clamped through-rows staged for one search (stride `n`).
    clamped: Vec<W>,
    /// Candidates staged for one search (live candidates only under
    /// partial membership).
    stage_candidates: Vec<NodeId>,
    /// Link prices parallel to `stage_candidates`.
    stage_prices: Vec<u64>,
    /// Landmark path: per staged candidate, its index in the oracle row
    /// cache (on-demand fills write through to the cached slot).
    stage_oracle_idx: Vec<u32>,
    /// Landmark path: whether the staged row holds exact data yet.
    stage_present: Vec<bool>,
    /// Landmark path: link *length* `ℓ(u, c)` per staged candidate.
    stage_lengths: Vec<W>,
    current_row: Vec<W>,
    search_scratch: SearchScratch<W>,
    lm_policy: LandmarkPolicy,
    lm: LandmarkCache<W>,
    lm_scratch: LandmarkScratch<W>,
    link_scratch: Vec<(u32, u64)>,
    /// Live membership: departed nodes keep their id (and spec row) but
    /// hold no links, receive none, and drop out of every cost aggregate.
    live: BitSet,
    live_count: usize,
    /// Bumped by every join/leave; masked caches carry the version they
    /// were built against.
    membership_version: u64,
    masked_targets: Vec<MaskedTargets>,
    /// Nodes whose cached eval cost was dropped since the last
    /// [`DistanceEngine::take_dirty_costs`] drain (scheduler support).
    eval_dirty: BitSet,
    stats: EngineStats,
}

impl<'a> DistanceEngine<'a> {
    /// Creates an engine for `spec`, bound to `config`, with every node a
    /// live member. The row tier is chosen automatically
    /// ([`RowTier::auto`]); use [`DistanceEngine::with_tier`] to force one.
    ///
    /// # Panics
    ///
    /// Panics if `config`'s node count differs from the spec's.
    pub fn new(spec: &'a GameSpec, config: Configuration) -> Self {
        Self::with_tier(spec, config, RowTier::auto(spec))
            // bbc-lint: allow(panic, RowTier::auto picks u64 whenever u32 does not fit, and the u64 tier never errs)
            .expect("the automatic tier always fits the spec")
    }

    /// Creates an engine on an explicit row tier (full membership).
    ///
    /// # Errors
    ///
    /// [`Error::RowTierOverflow`] when `tier` is [`RowTier::U32`] and the
    /// spec's `n·M` product does not fit `u32` — the narrow rows could
    /// wrap, so the engine refuses instead.
    ///
    /// # Panics
    ///
    /// Panics if `config`'s node count differs from the spec's.
    pub fn with_tier(spec: &'a GameSpec, config: Configuration, tier: RowTier) -> Result<Self> {
        let n = spec.node_count();
        let mut all = BitSet::new(n);
        for v in 0..n {
            all.insert(v);
        }
        Self::with_membership_tier(spec, config, &all, tier)
    }

    /// Creates an engine for `spec` bound to `config` with only the nodes
    /// in `live` as members — the fresh-build counterpart of a sequence of
    /// [`DistanceEngine::remove_node`] / [`DistanceEngine::add_node`] calls,
    /// and the reference state of the churn determinism contract (a
    /// remove/re-add round trip is byte-identical to this constructor; see
    /// [`DistanceEngine::state_digest`]). The row tier is chosen
    /// automatically.
    ///
    /// # Errors
    ///
    /// - [`Error::NodeOutOfBounds`] if `live` names a node outside the game;
    /// - [`Error::NodeNotLive`] if a departed node still holds links;
    /// - [`Error::TargetNotLive`] if a live node links to a departed one.
    ///
    /// # Panics
    ///
    /// Panics if `config`'s node count differs from the spec's.
    pub fn with_membership(
        spec: &'a GameSpec,
        config: Configuration,
        live: &BitSet,
    ) -> Result<Self> {
        Self::with_membership_tier(spec, config, live, RowTier::auto(spec))
    }

    /// [`DistanceEngine::with_membership`] on an explicit row tier.
    ///
    /// # Errors
    ///
    /// As [`DistanceEngine::with_membership`], plus
    /// [`Error::RowTierOverflow`] when the forced tier cannot represent the
    /// spec (see [`DistanceEngine::with_tier`]).
    ///
    /// # Panics
    ///
    /// Panics if `config`'s node count differs from the spec's.
    pub fn with_membership_tier(
        spec: &'a GameSpec,
        config: Configuration,
        live: &BitSet,
        tier: RowTier,
    ) -> Result<Self> {
        let inner = match tier {
            RowTier::U32 => {
                if !RowTier::u32_fits(spec) {
                    return Err(Error::RowTierOverflow {
                        n: spec.node_count(),
                        penalty: spec.penalty(),
                    });
                }
                EngineInner::U32(EngineCore::with_membership(spec, config, live)?)
            }
            RowTier::U64 => EngineInner::U64(EngineCore::with_membership(spec, config, live)?),
        };
        Ok(Self { inner })
    }

    /// The row tier this engine runs on.
    pub fn row_tier(&self) -> RowTier {
        match &self.inner {
            EngineInner::U32(_) => RowTier::U32,
            EngineInner::U64(_) => RowTier::U64,
        }
    }

    /// The game this engine serves.
    pub fn spec(&self) -> &'a GameSpec {
        tiered!(self, e => e.spec)
    }

    /// The configuration the engine is currently synced to.
    pub fn config(&self) -> &Configuration {
        tiered!(self, e => &e.config)
    }

    /// Consumes the engine, returning the bound configuration without
    /// copying it.
    pub fn into_config(self) -> Configuration {
        match self.inner {
            EngineInner::U32(e) => e.config,
            EngineInner::U64(e) => e.config,
        }
    }

    /// Cache counters accumulated since construction.
    pub fn stats(&self) -> EngineStats {
        tiered!(self, e => e.stats)
    }

    /// Publishes the engine's effort counters into a metrics registry
    /// (names under `engine/`), plus two derived gauges: the oracle-row
    /// cache hit rate and the best-response outcome-memo hit rate, both in
    /// permille. Observational only — reads a [`EngineStats`] snapshot and
    /// touches no engine state, so digests and decisions are unaffected.
    pub fn publish_metrics(&self, reg: &mut bbc_obs::Registry) {
        self.stats().publish_metrics(reg);
    }

    /// Builder form of [`DistanceEngine::set_landmark_policy`].
    #[must_use]
    pub fn with_landmarks(mut self, policy: LandmarkPolicy) -> Self {
        self.set_landmark_policy(policy);
        self
    }

    /// Sets the landmark bound policy (see [`LandmarkPolicy`]). Changing the
    /// policy drops the cached landmark rows (they are re-picked at the next
    /// landmark-path query) but keeps every deviation row and outcome memo —
    /// the bounds are admissible, so decisions are policy-independent and
    /// stay valid.
    pub fn set_landmark_policy(&mut self, policy: LandmarkPolicy) {
        tiered!(mut self, e => e.set_landmark_policy(policy));
    }

    /// The landmark bound policy in force.
    pub fn landmark_policy(&self) -> LandmarkPolicy {
        tiered!(self, e => e.lm_policy)
    }

    /// Rewires one node's strategy, patching the CSR mirror in place and
    /// invalidating exactly the cached rows whose traversal touched `u`.
    ///
    /// # Errors
    ///
    /// Returns the strategy-validation failure (see
    /// [`GameSpec::validate_strategy`]), [`Error::NodeNotLive`] when `u` has
    /// departed, or [`Error::TargetNotLive`] when some target has — all
    /// without modifying any state.
    pub fn apply_strategy(&mut self, u: NodeId, targets: Vec<NodeId>) -> Result<()> {
        tiered!(mut self, e => e.apply_strategy(u, targets))
    }

    /// Re-syncs the engine to an arbitrary configuration by diffing against
    /// the bound one: only nodes whose strategy differs are patched and
    /// invalidated, so stepping an enumeration odometer costs one patch.
    ///
    /// # Panics
    ///
    /// Panics under partial membership — configurations carry no membership,
    /// so a diff-sync is only meaningful when every node is live.
    pub fn sync_to(&mut self, config: &Configuration) {
        tiered!(mut self, e => e.sync_to(config))
    }

    /// Exact best response for `u` under the bound configuration, served
    /// from the outcome memo when nothing it depends on has changed.
    ///
    /// Byte-identical to [`crate::best_response::exact`] on the same
    /// configuration *for either row tier* (the differential suite enforces
    /// both).
    ///
    /// # Errors
    ///
    /// [`crate::Error::SearchBudgetExceeded`] exactly as
    /// [`crate::best_response::exact`].
    pub fn best_response(
        &mut self,
        u: NodeId,
        options: &BestResponseOptions,
    ) -> Result<BestResponseOutcome> {
        tiered!(mut self, e => e.best_response(u, options))
    }

    /// Cost of node `u` under the bound configuration (cached per node).
    /// A departed node costs 0 — it plays no strategy and owes no
    /// distances (see the churn rules in the module docs).
    pub fn node_cost(&mut self, u: NodeId) -> u64 {
        tiered!(mut self, e => e.node_cost(u))
    }

    /// Costs of every node under the bound configuration.
    pub fn node_costs(&mut self) -> Vec<u64> {
        tiered!(mut self, e => e.node_costs())
    }

    /// Social cost (sum of node costs) of the bound configuration.
    pub fn social_cost(&mut self) -> u64 {
        tiered!(mut self, e => e.social_cost())
    }

    /// Shortest-path distances from `u` in the bound configuration's graph
    /// (cached; unreachable targets hold [`bbc_graph::UNREACHABLE`]).
    /// Always raw `u64`, whatever the row tier.
    ///
    /// # Panics
    ///
    /// Panics when `u` has departed — a dead node has no distances.
    pub fn distances_from(&mut self, u: NodeId) -> &[u64] {
        tiered!(mut self, e => e.distances_from(u))
    }

    /// `true` iff the bound configuration's graph, restricted to the live
    /// membership, is strongly connected (allocation-free after warm-up).
    pub fn is_strongly_connected(&mut self) -> bool {
        tiered!(mut self, e => e.is_strongly_connected())
    }

    /// Number of ordered live pairs `(u, v)` with positive preference
    /// weight and `v` unreachable from `u` — the disconnection-penalty
    /// exposure of the bound configuration (each counted pair is priced at
    /// `w(u,v)·M` in `u`'s cost; zero-weight pairs cost nothing and play
    /// has no incentive to connect them, so they are not exposure).
    pub fn disconnected_live_pairs(&mut self) -> u64 {
        tiered!(mut self, e => e.disconnected_live_pairs())
    }

    /// [`DistanceEngine::best_response`] with the oracle BFS fan-out on the
    /// parallel path: `u`'s missing deviation rows (up to `n − 1`
    /// traversals) are filled across `threads` OS threads via
    /// [`DistanceEngine::prefill_oracle_rows`] before the search runs.
    ///
    /// Byte-identical to [`DistanceEngine::best_response`] for every thread
    /// count (prefilling writes exactly the rows the sequential path would
    /// compute); when the memoized outcome for `(u, options)` is still
    /// valid, the prefill is skipped so a cache hit stays a cache hit.
    ///
    /// # Errors
    ///
    /// As [`DistanceEngine::best_response`].
    pub fn best_response_prefilled(
        &mut self,
        u: NodeId,
        options: &BestResponseOptions,
        threads: usize,
    ) -> Result<BestResponseOutcome> {
        tiered!(mut self, e => e.best_response_prefilled(u, options, threads))
    }

    /// Fills every invalid oracle row of `nodes` across `threads` OS threads
    /// (`std::thread::scope`), returning the number of traversals run.
    ///
    /// Traversals read the shared CSR immutably; results are written back in
    /// deterministic `(node, candidate)` order, so any thread count produces
    /// the same engine state as the sequential path.
    pub fn prefill_oracle_rows(&mut self, nodes: &[NodeId], threads: usize) -> usize {
        tiered!(mut self, e => e.prefill_oracle_rows(nodes, threads))
    }

    /// `true` iff `u` is currently a live member.
    #[inline]
    pub fn is_live(&self, u: NodeId) -> bool {
        tiered!(self, e => e.live.contains(u.index()))
    }

    /// Number of live members.
    #[inline]
    pub fn live_count(&self) -> usize {
        tiered!(self, e => e.live_count)
    }

    /// Live members in ascending id order.
    pub fn live_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        tiered!(self, e => e.live.iter().map(NodeId::new))
    }

    /// The live membership as a bitset (the exact value a fresh
    /// [`DistanceEngine::with_membership`] build of this state takes).
    pub fn live_set(&self) -> &BitSet {
        tiered!(self, e => &e.live)
    }

    /// Departs node `u`: strips every live node's link to `u`, clears `u`'s
    /// own links, retires its CSR slab, and drops it from every cost
    /// aggregate. `u`'s id stays valid and can rejoin via
    /// [`DistanceEngine::add_node`].
    ///
    /// Invalidation is incremental: each in-link strip and the self-clear
    /// go through the standard touched-set rule, so deviation rows whose
    /// traversals met none of the patched nodes survive; only the
    /// membership-dependent aggregates (outcome memos, eval costs, masked
    /// target lists) are dropped wholesale — membership is a term in every
    /// one of them. `u`'s own `d_{G∖u}` rows survive by construction
    /// (`G∖u` never contained `u`'s arcs), which is what makes a brief
    /// leave/rejoin cheap.
    ///
    /// # Errors
    ///
    /// [`Error::NodeOutOfBounds`] or [`Error::NodeNotLive`]; no state
    /// changes on error.
    pub fn remove_node(&mut self, u: NodeId) -> Result<()> {
        tiered!(mut self, e => e.remove_node(u))
    }

    /// (Re)admits node `u` with the given strategy. Targets must be live;
    /// in-links form later through the other players' best responses, just
    /// as in a real overlay join.
    ///
    /// # Errors
    ///
    /// [`Error::NodeOutOfBounds`], [`Error::NodeAlreadyLive`],
    /// [`Error::TargetNotLive`], or the strategy-validation failure; no
    /// state changes on error.
    pub fn add_node(&mut self, u: NodeId, targets: Vec<NodeId>) -> Result<()> {
        tiered!(mut self, e => e.add_node(u, targets))
    }

    /// Drains the set of nodes whose cached cost was dropped since the last
    /// drain (by strategy patches or membership changes). Cost-keyed
    /// schedulers use this to update priority state in `O(changed)` per
    /// step instead of re-reading every node.
    pub fn take_dirty_costs(&mut self) -> Vec<NodeId> {
        tiered!(mut self, e => e.take_dirty_costs())
    }

    /// FNV-1a digest of the engine's observable state: live membership,
    /// every strategy, and the physical CSR arenas.
    ///
    /// The churn determinism contract (pinned by the round-trip tests):
    /// after any sequence of [`DistanceEngine::remove_node`] /
    /// [`DistanceEngine::add_node`] calls, the digest equals that of a
    /// fresh [`DistanceEngine::with_membership`] over the same
    /// configuration and membership — caches are warm vs cold, but the
    /// state they describe is byte-identical. The digest hashes no row
    /// data, and rows agree across tiers anyway, so it is also row-tier
    /// independent.
    pub fn state_digest(&self) -> u64 {
        tiered!(self, e => e.state_digest())
    }

    /// Compacts the CSR arenas to the canonical layout a fresh
    /// [`DistanceEngine::with_membership`] build would produce — the
    /// snapshot hook: [`DistanceEngine::state_digest`] hashes the physical
    /// arenas, which strategy patches leave history-dependent, so a
    /// serialized `(configuration, membership)` pair can only certify the
    /// digest of a *canonicalized* engine. Costs one arena rebuild plus the
    /// same cache drops as a membership change; observable game state
    /// (membership, strategies, costs) is untouched.
    pub fn canonicalize(&mut self) {
        tiered!(mut self, e => e.canonicalize())
    }
}

impl<'a, W: RowWord> EngineCore<'a, W> {
    fn with_membership(spec: &'a GameSpec, config: Configuration, live: &BitSet) -> Result<Self> {
        let n = spec.node_count();
        assert_eq!(config.node_count(), n, "configuration size mismatch");
        let mut members = BitSet::new(n);
        for v in live.iter() {
            if v >= n {
                return Err(Error::NodeOutOfBounds {
                    node: NodeId::new(v),
                    n,
                });
            }
            members.insert(v);
        }
        let live_count = members.len();
        for u in NodeId::all(n) {
            if !members.contains(u.index()) {
                if !config.strategy(u).is_empty() {
                    return Err(Error::NodeNotLive { node: u });
                }
                continue;
            }
            for &t in config.strategy(u) {
                if !members.contains(t.index()) {
                    return Err(Error::TargetNotLive { node: u, target: t });
                }
            }
        }
        let mut csr = CsrGraph::new(n);
        let mut link_scratch = Vec::new();
        for u in NodeId::all(n) {
            fill_links(spec, u, config.strategy(u), &mut link_scratch);
            csr.set_out_links(u.index(), &link_scratch);
        }
        // bbc-lint: allow(panic, with_tier validated the penalty against the tier before reaching here)
        let penalty = W::from_u64(spec.penalty()).expect("tier checked before construction");
        Ok(Self {
            spec,
            config,
            csr,
            penalty,
            bfs: ClampedBfs::new(n),
            dijkstra: ClampedDijkstra::new(n),
            eval_bfs: CsrBfs::new(n),
            eval_dijkstra: CsrDijkstra::new(n),
            conn: ConnectivityScratch::new(),
            oracle: (0..n).map(|_| OracleCache::default()).collect(),
            eval_rows: (0..n).map(|_| RowSlot::new(n)).collect(),
            eval_costs: vec![None; n],
            clamped: Vec::new(),
            stage_candidates: Vec::new(),
            stage_prices: Vec::new(),
            stage_oracle_idx: Vec::new(),
            stage_present: Vec::new(),
            stage_lengths: Vec::new(),
            current_row: vec![W::ZERO; n],
            search_scratch: SearchScratch::new(),
            lm_policy: LandmarkPolicy::default(),
            lm: LandmarkCache {
                version: 0,
                landmarks: Vec::new(),
                rows: Vec::new(),
                partition: BlockPartition::new(n),
                envelope: BlockEnvelope::new(),
                env_valid: false,
            },
            lm_scratch: LandmarkScratch::new(),
            link_scratch,
            live: members,
            live_count,
            membership_version: 1,
            masked_targets: vec![MaskedTargets::default(); n],
            eval_dirty: BitSet::new(n),
            stats: EngineStats::default(),
        })
    }

    fn apply_strategy(&mut self, u: NodeId, targets: Vec<NodeId>) -> Result<()> {
        if self.live_count < self.spec.node_count() {
            if !self.live.contains(u.index()) {
                return Err(Error::NodeNotLive { node: u });
            }
            for &t in &targets {
                if !self.live.contains(t.index()) {
                    return Err(Error::TargetNotLive { node: u, target: t });
                }
            }
        }
        self.config.set_strategy(self.spec, u, targets)?;
        fill_links(
            self.spec,
            u,
            self.config.strategy(u),
            &mut self.link_scratch,
        );
        self.csr.set_out_links(u.index(), &self.link_scratch);
        self.stats.patches_applied += 1;
        self.invalidate_after_move(u.index());
        Ok(())
    }

    fn sync_to(&mut self, config: &Configuration) {
        assert_eq!(
            self.live_count,
            self.config.node_count(),
            "sync_to requires full membership"
        );
        assert_eq!(
            config.node_count(),
            self.config.node_count(),
            "configuration size mismatch"
        );
        for u in NodeId::all(self.config.node_count()) {
            if self.config.strategy(u) != config.strategy(u) {
                self.apply_strategy(u, config.strategy(u).to_vec())
                    // bbc-lint: allow(panic, the synced configuration came from a sibling engine that already validated it)
                    .expect("synced configuration holds valid strategies");
            }
        }
    }

    fn invalidate_after_move(&mut self, moved: usize) {
        for (u2, oc) in self.oracle.iter_mut().enumerate() {
            if !oc.init {
                continue;
            }
            if !oc.outcome_complete {
                // A landmark-pruned memo depends on rows the search never
                // materialized — their dependence on the mover is unknown,
                // so the touched-set rule below cannot protect it.
                oc.outcome = None;
            }
            if u2 == moved {
                // `G∖u2` never contained u2's arcs: rows stay, but the
                // node's own strategy (hence its current cost) changed.
                oc.outcome = None;
                continue;
            }
            let mut any = false;
            for slot in &mut oc.rows {
                if slot.valid && slot.touched.contains(moved) {
                    slot.valid = false;
                    any = true;
                    self.stats.rows_invalidated += 1;
                }
            }
            if any {
                oc.outcome = None;
            }
        }
        for (i, (slot, cost)) in self
            .eval_rows
            .iter_mut()
            .zip(&mut self.eval_costs)
            .enumerate()
        {
            if slot.valid && slot.touched.contains(moved) {
                slot.valid = false;
                if cost.is_some() {
                    self.eval_dirty.insert(i);
                }
                *cost = None;
                self.stats.rows_invalidated += 1;
            }
        }
        // Landmark rows cover the full graph (mover's arcs included), so
        // they get no mover exemption: a landmark's own rewire always lands
        // in its touched set and drops the row.
        for slot in &mut self.lm.rows {
            if slot.valid && slot.touched.contains(moved) {
                slot.valid = false;
                self.lm.env_valid = false;
                self.stats.rows_invalidated += 1;
            }
        }
    }

    fn ensure_oracle_init(&mut self, u: NodeId) {
        let n = self.spec.node_count();
        let oc = &mut self.oracle[u.index()];
        if oc.init {
            return;
        }
        oc.candidates = self.spec.affordable_targets(u);
        oc.prices = oc
            .candidates
            .iter()
            .map(|&c| self.spec.link_cost(u, c))
            .collect();
        oc.weighted_targets = weighted_targets_of(self.spec, u);
        oc.budget = self.spec.budget(u);
        oc.rows = oc.candidates.iter().map(|_| RowSlot::new(n)).collect();
        oc.init = true;
    }

    /// Recomputes every invalid oracle row of `u` for *live* candidates
    /// (sequentially). A departed candidate's row is neither needed (it is
    /// filtered out of the search staging) nor meaningful, so it is left
    /// invalid until the candidate rejoins.
    ///
    /// Rows are filled penalty-clamped with the link length `ℓ(u,c)` baked
    /// in at the traversal seed, so staging a search is a plain copy.
    fn ensure_oracle_rows(&mut self, u: NodeId) {
        self.ensure_oracle_init(u);
        let oc = &mut self.oracle[u.index()];
        let unit = self.spec.has_unit_lengths();
        for (i, slot) in oc.rows.iter_mut().enumerate() {
            if !self.live.contains(oc.candidates[i].index()) {
                continue;
            }
            if slot.valid {
                self.stats.oracle_row_hits += 1;
                continue;
            }
            let c = oc.candidates[i];
            let offset = W::from_u64(self.spec.link_length(u, c))
                // bbc-lint: allow(panic, link lengths are below the penalty, which the tier check proved representable)
                .expect("link length is below the penalty, which fits the tier");
            let (dist, touched) = if unit {
                self.bfs
                    .run_skipping(&self.csr, c.index(), u.index(), offset, self.penalty);
                (self.bfs.distances(), self.bfs.touched())
            } else {
                self.dijkstra
                    .run_skipping(&self.csr, c.index(), u.index(), offset, self.penalty);
                (self.dijkstra.distances(), self.dijkstra.touched())
            };
            slot.dist.copy_from_slice(dist);
            slot.touched.copy_from(touched);
            slot.valid = true;
            self.stats.oracle_rows_computed += 1;
        }
    }

    /// Computes one oracle row of `u` (by candidate index) if invalid — the
    /// single-row core of [`EngineCore::ensure_oracle_rows`], also behind
    /// the landmark path's on-demand fills.
    fn fill_oracle_row(&mut self, u: NodeId, i: usize) {
        let oc = &mut self.oracle[u.index()];
        let slot = &mut oc.rows[i];
        if slot.valid {
            return;
        }
        let c = oc.candidates[i];
        let offset = W::from_u64(self.spec.link_length(u, c))
            // bbc-lint: allow(panic, link lengths are below the penalty, which the tier check proved representable)
            .expect("link length is below the penalty, which fits the tier");
        let (dist, touched) = if self.spec.has_unit_lengths() {
            self.bfs
                .run_skipping(&self.csr, c.index(), u.index(), offset, self.penalty);
            (self.bfs.distances(), self.bfs.touched())
        } else {
            self.dijkstra
                .run_skipping(&self.csr, c.index(), u.index(), offset, self.penalty);
            (self.dijkstra.distances(), self.dijkstra.touched())
        };
        slot.dist.copy_from_slice(dist);
        slot.touched.copy_from(touched);
        slot.valid = true;
        self.stats.oracle_rows_computed += 1;
    }

    /// Picks/refreshes the cached landmark layer for `k` landmarks: re-pick
    /// evenly over the live set when the membership or requested count
    /// changed, lazily re-run the full-`G` traversal of each invalidated
    /// row, and rebuild the block envelope if anything moved.
    fn ensure_landmarks(&mut self, k: usize) {
        let n = self.spec.node_count();
        if self.lm.version != self.membership_version || self.lm.landmarks.len() != k {
            let live: Vec<NodeId> = self.live.iter().map(NodeId::new).collect();
            self.lm.landmarks = (0..k).map(|j| live[j * live.len() / k]).collect();
            self.lm.rows = (0..k).map(|_| RowSlot::new(n)).collect();
            self.lm.version = self.membership_version;
            self.lm.env_valid = false;
        }
        let unit = self.spec.has_unit_lengths();
        for (idx, slot) in self.lm.rows.iter_mut().enumerate() {
            if slot.valid {
                continue;
            }
            let l = self.lm.landmarks[idx];
            let (dist, touched) = if unit {
                self.bfs.run(&self.csr, l.index(), W::ZERO, self.penalty);
                (self.bfs.distances(), self.bfs.touched())
            } else {
                self.dijkstra
                    .run(&self.csr, l.index(), W::ZERO, self.penalty);
                (self.dijkstra.distances(), self.dijkstra.touched())
            };
            slot.dist.copy_from_slice(dist);
            slot.touched.copy_from(touched);
            slot.valid = true;
            self.stats.landmark_rows_computed += 1;
            self.lm.env_valid = false;
        }
        if !self.lm.env_valid {
            let LandmarkCache {
                rows,
                partition,
                envelope,
                env_valid,
                ..
            } = &mut self.lm;
            envelope.rebuild(
                partition,
                rows.iter().map(|s| s.dist.as_slice()),
                self.penalty,
            );
            *env_valid = true;
        }
    }

    fn best_response(
        &mut self,
        u: NodeId,
        options: &BestResponseOptions,
    ) -> Result<BestResponseOutcome> {
        if !self.live.contains(u.index()) {
            return Err(Error::NodeNotLive { node: u });
        }
        if let Some((cached_options, outcome)) = &self.oracle[u.index()].outcome {
            if cached_options == options {
                self.stats.outcome_hits += 1;
                return Ok(outcome.clone());
            }
        }
        let lm_count = self.lm_policy.resolve(self.live_count);
        if lm_count > 0 {
            return self.best_response_bounded(u, options, lm_count);
        }
        self.ensure_oracle_rows(u);
        let n = self.spec.node_count();
        let all_live = self.live_count == n;
        if !all_live {
            self.ensure_masked_targets(u);
        }
        let oc = &self.oracle[u.index()];

        // Stage the clamped through-rows for the search — live candidates
        // only, so a departed peer is neither a purchasable target nor a
        // relay in any priced strategy. Cached rows are already clamped
        // with the link length baked in, so staging is a plain copy.
        self.clamped.clear();
        self.stage_candidates.clear();
        self.stage_prices.clear();
        for (i, slot) in oc.rows.iter().enumerate() {
            let c = oc.candidates[i];
            if !all_live && !self.live.contains(c.index()) {
                continue;
            }
            self.stage_candidates.push(c);
            self.stage_prices.push(oc.prices[i]);
            self.clamped.extend_from_slice(&slot.dist);
        }
        let view = OracleView {
            spec: self.spec,
            node: u,
            candidates: &self.stage_candidates,
            rows: &self.clamped,
            prices: &self.stage_prices,
            weighted_targets: if all_live {
                &oc.weighted_targets
            } else {
                &self.masked_targets[u.index()].targets
            },
            budget: oc.budget,
            all_live,
        };

        // Price the node's current strategy through the same rows.
        self.current_row.fill(self.penalty);
        for &t in self.config.strategy(u) {
            let i = self
                .stage_candidates
                .binary_search(&t)
                // bbc-lint: allow(panic, apply_strategy validated every held target as a live affordable candidate)
                .expect("a held strategy target is always a live, affordable candidate");
            min_into(&mut self.current_row, &self.clamped[i * n..(i + 1) * n]);
        }
        let current_cost = view.aggregate(&self.current_row);

        let outcome = run_search(&view, current_cost, options, &mut self.search_scratch)?;
        self.stats.searches_run += 1;
        self.oracle[u.index()].outcome = Some((*options, outcome.clone()));
        self.oracle[u.index()].outcome_complete = true;
        Ok(outcome)
    }

    /// The landmark-bounded twin of the exact staging path: identical
    /// decisions (the bound rows are admissible and the search preserves the
    /// exact DFS preorder and record semantics), but cached bound rows stand
    /// in for the per-query suffix-min arena and exact deviation rows are
    /// materialized on demand — an invalid row is computed only when the
    /// search actually includes its candidate, and the fill writes through
    /// to the oracle cache so later queries keep it.
    fn best_response_bounded(
        &mut self,
        u: NodeId,
        options: &BestResponseOptions,
        lm_count: usize,
    ) -> Result<BestResponseOutcome> {
        let rows_before = self.stats.oracle_rows_computed;
        self.ensure_landmarks(lm_count);
        self.ensure_oracle_init(u);
        let n = self.spec.node_count();
        let all_live = self.live_count == n;
        if !all_live {
            self.ensure_masked_targets(u);
        }
        // The node's current strategy is priced through exact rows (the
        // search compares every candidate strategy against it, so it cannot
        // be bounded); everything else waits for the search to ask.
        let strategy = self.config.strategy(u).to_vec();
        for &t in &strategy {
            let i = self.oracle[u.index()]
                .candidates
                .binary_search(&t)
                // bbc-lint: allow(panic, apply_strategy validated every held target as an affordable candidate)
                .expect("a held strategy target is always an affordable candidate");
            self.fill_oracle_row(u, i);
        }

        // Split the engine into disjoint field borrows: the on-demand fill
        // closure traverses via `bfs`/`dijkstra` and writes through to the
        // oracle slots while the search holds the staged arenas.
        let EngineCore {
            spec,
            csr,
            penalty,
            bfs,
            dijkstra,
            oracle,
            clamped,
            stage_candidates,
            stage_prices,
            stage_oracle_idx,
            stage_present,
            stage_lengths,
            current_row,
            search_scratch,
            masked_targets,
            live,
            stats,
            lm,
            lm_scratch,
            ..
        } = &mut *self;
        let spec = *spec;
        let penalty = *penalty;
        let u_idx = u.index();
        let oc = &mut oracle[u_idx];

        clamped.clear();
        stage_candidates.clear();
        stage_prices.clear();
        stage_oracle_idx.clear();
        stage_present.clear();
        stage_lengths.clear();
        for (i, slot) in oc.rows.iter().enumerate() {
            let c = oc.candidates[i];
            if !all_live && !live.contains(c.index()) {
                continue;
            }
            stage_candidates.push(c);
            stage_prices.push(oc.prices[i]);
            // bbc-lint: allow(narrowing-cast, i indexes the candidate list, bounded by n <= u32::MAX)
            stage_oracle_idx.push(i as u32);
            stage_lengths.push(
                W::from_u64(spec.link_length(u, c))
                    // bbc-lint: allow(panic, link lengths are below the penalty, which the tier check proved representable)
                    .expect("link length is below the penalty, which fits the tier"),
            );
            if slot.valid {
                clamped.extend_from_slice(&slot.dist);
                stage_present.push(true);
                stats.oracle_row_hits += 1;
            } else {
                let start = clamped.len();
                clamped.resize(start + n, penalty);
                stage_present.push(false);
            }
        }

        let view = OracleView {
            spec,
            node: u,
            candidates: stage_candidates,
            rows: &[],
            prices: stage_prices,
            weighted_targets: if all_live {
                &oc.weighted_targets
            } else {
                &masked_targets[u_idx].targets
            },
            budget: oc.budget,
            all_live,
        };

        // Price the current strategy (its rows are exact and staged).
        current_row.fill(penalty);
        for &t in &strategy {
            let i = stage_candidates
                .binary_search(&t)
                // bbc-lint: allow(panic, apply_strategy validated every held target as a live affordable candidate)
                .expect("a held strategy target is always a live, affordable candidate");
            min_into(current_row, &clamped[i * n..(i + 1) * n]);
        }
        let current_cost = view.aggregate(current_row);

        let lm_rows: Vec<&[W]> = lm.rows.iter().map(|s| s.dist.as_slice()).collect();
        build_landmark_bounds(
            lm_scratch,
            stage_candidates,
            stage_lengths,
            &lm_rows,
            &lm.partition,
            &lm.envelope,
            n,
            penalty,
        );

        let unit = spec.has_unit_lengths();
        let oc_rows = &mut oc.rows;
        let mut fetch = |i: usize, dst: &mut [W]| {
            let slot = &mut oc_rows[stage_oracle_idx[i] as usize];
            if !slot.valid {
                let c = stage_candidates[i];
                let offset = stage_lengths[i];
                let (dist, touched) = if unit {
                    bfs.run_skipping(csr, c.index(), u_idx, offset, penalty);
                    (bfs.distances(), bfs.touched())
                } else {
                    dijkstra.run_skipping(csr, c.index(), u_idx, offset, penalty);
                    (dijkstra.distances(), dijkstra.touched())
                };
                slot.dist.copy_from_slice(dist);
                slot.touched.copy_from(touched);
                slot.valid = true;
                stats.oracle_rows_computed += 1;
            }
            dst.copy_from_slice(&slot.dist);
        };

        let mut outcome = run_search_landmark(
            &view,
            clamped,
            stage_present,
            &mut fetch,
            lm_scratch,
            current_cost,
            options,
            search_scratch,
        )?;
        stats.searches_run += 1;
        outcome.rows_materialized = stats.oracle_rows_computed - rows_before;
        let complete = {
            let oc = &self.oracle[u_idx];
            self.stage_oracle_idx
                .iter()
                .all(|&i| oc.rows[i as usize].valid)
        };
        let oc = &mut self.oracle[u_idx];
        oc.outcome_complete = complete;
        oc.outcome = Some((*options, outcome.clone()));
        Ok(outcome)
    }

    /// Rebuilds `u`'s membership-masked weighted target list when the
    /// membership changed since it was last built.
    fn ensure_masked_targets(&mut self, u: NodeId) {
        let mt = &mut self.masked_targets[u.index()];
        if mt.version == self.membership_version {
            return;
        }
        mt.targets.clear();
        for v in self.live.iter().map(NodeId::new) {
            if v == u {
                continue;
            }
            let w = self.spec.weight(u, v);
            if w > 0 {
                // bbc-lint: allow(narrowing-cast, node ids are < n <= u32::MAX per GameSpec validation)
                mt.targets.push((v.index() as u32, w));
            }
        }
        mt.version = self.membership_version;
    }

    /// Cost of node `u` under the bound configuration (cached per node).
    /// A departed node costs 0 — it plays no strategy and owes no
    /// distances (see the churn rules in the module docs).
    fn node_cost(&mut self, u: NodeId) -> u64 {
        if !self.live.contains(u.index()) {
            return 0;
        }
        if let Some(cost) = self.eval_costs[u.index()] {
            return cost;
        }
        let slot = &mut self.eval_rows[u.index()];
        if !slot.valid {
            let unit = self.spec.has_unit_lengths();
            let dist = if unit {
                self.eval_bfs.run(&self.csr, u.index());
                self.eval_bfs.distances()
            } else {
                self.eval_dijkstra.run(&self.csr, u.index());
                self.eval_dijkstra.distances()
            };
            slot.dist.copy_from_slice(dist);
            slot.touched.copy_from(if unit {
                self.eval_bfs.touched()
            } else {
                self.eval_dijkstra.touched()
            });
            slot.valid = true;
            self.stats.eval_rows_computed += 1;
        }
        let cost = if self.live_count == self.spec.node_count() {
            cost_from_distances(self.spec, u, &self.eval_rows[u.index()].dist)
        } else {
            cost_from_distances_masked(self.spec, u, &self.eval_rows[u.index()].dist, &self.live)
        };
        self.eval_costs[u.index()] = Some(cost);
        cost
    }

    fn node_costs(&mut self) -> Vec<u64> {
        NodeId::all(self.spec.node_count())
            .map(|u| self.node_cost(u))
            .collect()
    }

    fn social_cost(&mut self) -> u64 {
        self.node_costs().iter().sum()
    }

    fn distances_from(&mut self, u: NodeId) -> &[u64] {
        assert!(
            self.live.contains(u.index()),
            "distances_from({u}): node is not a live member"
        );
        self.node_cost(u);
        &self.eval_rows[u.index()].dist
    }

    fn is_strongly_connected(&mut self) -> bool {
        if self.live_count == self.spec.node_count() {
            self.conn.is_strongly_connected(&self.csr)
        } else {
            self.conn
                .is_strongly_connected_among(&self.csr, Some(&self.live))
        }
    }

    fn disconnected_live_pairs(&mut self) -> u64 {
        let live: Vec<usize> = self.live.iter().collect();
        let mut total = 0u64;
        for &u in &live {
            self.node_cost(NodeId::new(u));
            let dist = &self.eval_rows[u].dist;
            for &v in &live {
                if v != u
                    && dist[v] == UNREACHABLE
                    && self.spec.weight(NodeId::new(u), NodeId::new(v)) > 0
                {
                    total += 1;
                }
            }
        }
        total
    }

    fn best_response_prefilled(
        &mut self,
        u: NodeId,
        options: &BestResponseOptions,
        threads: usize,
    ) -> Result<BestResponseOutcome> {
        let memo_valid = self.oracle[u.index()]
            .outcome
            .as_ref()
            .is_some_and(|(cached, _)| cached == options);
        if threads > 1 && !memo_valid {
            self.prefill_oracle_rows(&[u], threads);
        }
        self.best_response(u, options)
    }

    /// Fills every invalid oracle row of `nodes` across `threads` OS threads
    /// (`std::thread::scope`), returning the number of traversals run.
    ///
    fn prefill_oracle_rows(&mut self, nodes: &[NodeId], threads: usize) -> usize {
        for &u in nodes {
            if self.live.contains(u.index()) {
                self.ensure_oracle_init(u);
            }
        }
        let mut work: Vec<(usize, usize)> = Vec::new();
        for &u in nodes {
            if !self.live.contains(u.index()) {
                continue;
            }
            let oc = &self.oracle[u.index()];
            for (i, slot) in oc.rows.iter().enumerate() {
                if !slot.valid && self.live.contains(oc.candidates[i].index()) {
                    work.push((u.index(), i));
                }
            }
        }
        if work.is_empty() {
            return 0;
        }
        let threads = threads.clamp(1, work.len());
        if threads == 1 {
            for &u in nodes {
                if self.live.contains(u.index()) {
                    self.ensure_oracle_rows(u);
                }
            }
            return work.len();
        }

        let n = self.spec.node_count();
        let unit = self.spec.has_unit_lengths();
        let csr = &self.csr;
        let oracle = &self.oracle;
        let spec = self.spec;
        let penalty = self.penalty;
        let chunk = work.len().div_ceil(threads);
        let results: Vec<Vec<FilledRow<W>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = work
                .chunks(chunk)
                .map(|items| {
                    scope.spawn(move || {
                        let mut bfs = ClampedBfs::<W>::new(n);
                        let mut dij = ClampedDijkstra::<W>::new(n);
                        items
                            .iter()
                            .map(|&(u, i)| {
                                let c = oracle[u].candidates[i];
                                let offset = W::from_u64(spec.link_length(NodeId::new(u), c))
                                    // bbc-lint: allow(panic, link lengths are below the penalty, which the tier check proved representable)
                                    .expect(
                                        "link length is below the penalty, which fits the tier",
                                    );
                                let (dist, touched) = if unit {
                                    bfs.run_skipping(csr, c.index(), u, offset, penalty);
                                    (bfs.distances().to_vec(), bfs.touched().clone())
                                } else {
                                    dij.run_skipping(csr, c.index(), u, offset, penalty);
                                    (dij.distances().to_vec(), dij.touched().clone())
                                };
                                (u, i, dist, touched)
                            })
                            .collect()
                    })
                })
                .collect();
            handles
                .into_iter()
                // bbc-lint: allow(panic, prefill returns a traversal count, not a Result; re-raising the worker panic is the only sound option)
                .map(|h| h.join().expect("row-filling thread panicked"))
                .collect()
        });
        let computed = work.len();
        for (u, i, dist, touched) in results.into_iter().flatten() {
            let slot = &mut self.oracle[u].rows[i];
            slot.dist.copy_from_slice(&dist);
            slot.touched.copy_from(&touched);
            slot.valid = true;
        }
        self.stats.oracle_rows_computed += computed as u64;
        computed
    }

    // ----- node lifecycle (churn) ------------------------------------

    fn remove_node(&mut self, u: NodeId) -> Result<()> {
        let n = self.spec.node_count();
        if u.index() >= n {
            return Err(Error::NodeOutOfBounds { node: u, n });
        }
        if !self.live.contains(u.index()) {
            return Err(Error::NodeNotLive { node: u });
        }
        for w in NodeId::all(n) {
            if w == u || !self.live.contains(w.index()) {
                continue;
            }
            if self.config.strategy(w).contains(&u) {
                let stripped: Vec<NodeId> = self
                    .config
                    .strategy(w)
                    .iter()
                    .copied()
                    .filter(|&t| t != u)
                    .collect();
                self.apply_strategy(w, stripped)
                    // bbc-lint: allow(panic, removing a target from a valid strategy cannot violate budget or liveness)
                    .expect("dropping a target keeps a strategy valid");
            }
        }
        self.apply_strategy(u, Vec::new())
            // bbc-lint: allow(panic, the empty strategy is trivially valid for any live node)
            .expect("the empty strategy is always valid");
        self.live.remove(u.index());
        self.live_count -= 1;
        self.csr.remove_node(u.index());
        self.after_membership_change();
        Ok(())
    }

    fn add_node(&mut self, u: NodeId, targets: Vec<NodeId>) -> Result<()> {
        let n = self.spec.node_count();
        if u.index() >= n {
            return Err(Error::NodeOutOfBounds { node: u, n });
        }
        if self.live.contains(u.index()) {
            return Err(Error::NodeAlreadyLive { node: u });
        }
        self.spec.validate_strategy(u, &targets)?;
        for &t in &targets {
            if !self.live.contains(t.index()) {
                return Err(Error::TargetNotLive { node: u, target: t });
            }
        }
        self.live.insert(u.index());
        self.live_count += 1;
        self.apply_strategy(u, targets)
            // bbc-lint: allow(panic, the loop above checked every target live, and the spec validated the strategy)
            .expect("strategy pre-validated against spec and membership");
        self.after_membership_change();
        Ok(())
    }

    /// Post-join/leave bookkeeping: canonicalize the CSR layout (so the
    /// physical state is history-independent — the determinism contract of
    /// [`DistanceEngine::state_digest`]), bump the membership version, and
    /// drop every membership-dependent aggregate. Distance rows are *not*
    /// dropped here; the touched-set invalidations of the patches that led
    /// here already covered them.
    fn after_membership_change(&mut self) {
        self.membership_version += 1;
        self.csr.rebuild_canonical();
        for oc in &mut self.oracle {
            oc.outcome = None;
        }
        for (i, cost) in self.eval_costs.iter_mut().enumerate() {
            *cost = None;
            self.eval_dirty.insert(i);
        }
        // Landmarks are picked evenly over the live set; force a re-pick
        // (which drops every landmark row) at the next landmark-path query.
        self.lm.version = 0;
    }

    fn canonicalize(&mut self) {
        // A membership change already is "canonicalize + drop dependent
        // aggregates"; reuse it wholesale so warm-vs-cold byte-identity
        // keeps being pinned by one code path.
        self.after_membership_change();
    }

    fn set_landmark_policy(&mut self, policy: LandmarkPolicy) {
        if policy != self.lm_policy {
            self.lm_policy = policy;
            self.lm.version = 0;
        }
    }

    fn take_dirty_costs(&mut self) -> Vec<NodeId> {
        let dirty: Vec<NodeId> = self.eval_dirty.iter().map(NodeId::new).collect();
        self.eval_dirty.clear();
        dirty
    }

    fn state_digest(&self) -> u64 {
        let mut h = bbc_graph::digest::Fnv1a::new();
        h.write_u64(self.live_count as u64);
        for v in self.live.iter() {
            h.write_u64(v as u64);
        }
        for u in NodeId::all(self.spec.node_count()) {
            let s = self.config.strategy(u);
            h.write_u64(s.len() as u64);
            for &t in s {
                h.write_u64(t.index() as u64);
            }
        }
        h.write_u64(self.csr.arena_digest());
        h.finish()
    }
}

/// Assembles `(target, length)` pairs for one node's strategy.
fn fill_links(spec: &GameSpec, u: NodeId, targets: &[NodeId], out: &mut Vec<(u32, u64)>) {
    out.clear();
    out.extend(
        targets
            .iter()
            // bbc-lint: allow(narrowing-cast, node ids are < n <= u32::MAX per GameSpec validation)
            .map(|&v| (v.index() as u32, spec.link_length(u, v))),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{best_response, CostModel};

    fn opts() -> BestResponseOptions {
        BestResponseOptions::default()
    }

    #[test]
    fn engine_best_response_matches_one_shot() {
        let spec = GameSpec::uniform(8, 2);
        for seed in 0..5 {
            let cfg = Configuration::random(&spec, seed);
            let mut engine = DistanceEngine::new(&spec, cfg.clone());
            for u in NodeId::all(8) {
                assert_eq!(
                    engine.best_response(u, &opts()).unwrap(),
                    best_response::exact(&spec, &cfg, u, &opts()).unwrap(),
                    "seed {seed} node {u}"
                );
            }
        }
    }

    #[test]
    fn engine_stays_correct_across_moves() {
        let spec = GameSpec::uniform(7, 2);
        let mut cfg = Configuration::random(&spec, 3);
        let mut engine = DistanceEngine::new(&spec, cfg.clone());
        // Interleave queries and moves; every post-move answer must match a
        // from-scratch computation.
        for step in 0..30u64 {
            let mover = NodeId::new((step % 7) as usize);
            let out = engine.best_response(mover, &opts()).unwrap();
            assert_eq!(
                out,
                best_response::exact(&spec, &cfg, mover, &opts()).unwrap(),
                "step {step}"
            );
            if out.improves() {
                engine
                    .apply_strategy(mover, out.best_strategy.clone())
                    .unwrap();
                cfg.set_strategy(&spec, mover, out.best_strategy).unwrap();
            }
            assert_eq!(
                engine.node_costs(),
                crate::reference::node_costs(&spec, &cfg)
            );
        }
        // A churning dense graph invalidates aggressively — correctness of
        // the answers above is the point; here just sanity-check the
        // counters stay coherent.
        let stats = engine.stats();
        assert_eq!(stats.searches_run + stats.outcome_hits, 30);
        assert!(stats.patches_applied > 0);
    }

    #[test]
    fn outcome_cache_hits_and_invalidates() {
        let spec = GameSpec::uniform(6, 1);
        let mut engine = DistanceEngine::new(&spec, Configuration::empty(6));
        let u = NodeId::new(0);
        let a = engine.best_response(u, &opts()).unwrap();
        let b = engine.best_response(u, &opts()).unwrap();
        assert_eq!(a, b);
        assert_eq!(engine.stats().outcome_hits, 1);
        // A move by the node itself keeps its rows but drops its outcome.
        engine.apply_strategy(u, a.best_strategy.clone()).unwrap();
        let c = engine.best_response(u, &opts()).unwrap();
        assert!(
            !c.improves(),
            "a node is stable right after best-responding"
        );
        assert_eq!(engine.stats().outcome_hits, 1, "self-move drops the memo");
    }

    #[test]
    fn differing_options_bypass_outcome_cache() {
        let spec = GameSpec::uniform(6, 2);
        let mut engine = DistanceEngine::new(&spec, Configuration::empty(6));
        let u = NodeId::new(2);
        let full = engine.best_response(u, &opts()).unwrap();
        let first = BestResponseOptions {
            stop_at_first_improvement: true,
            ..opts()
        };
        let early = engine.best_response(u, &first).unwrap();
        assert!(early.evaluations <= full.evaluations);
        assert_eq!(
            early,
            best_response::exact(&spec, engine.config(), u, &first).unwrap()
        );
    }

    #[test]
    fn sync_to_diffs_only_changed_nodes() {
        let spec = GameSpec::uniform(6, 2);
        let a = Configuration::random(&spec, 1);
        let mut b = a.clone();
        b.set_strategy(&spec, NodeId::new(3), vec![NodeId::new(0)])
            .unwrap();
        let mut engine = DistanceEngine::new(&spec, a);
        engine.node_costs();
        engine.sync_to(&b);
        assert_eq!(engine.stats().patches_applied, 1);
        assert_eq!(engine.node_costs(), crate::reference::node_costs(&spec, &b));
    }

    #[test]
    fn parallel_prefill_matches_sequential_state() {
        let spec = GameSpec::uniform(10, 2);
        let cfg = Configuration::random(&spec, 5);
        let nodes: Vec<NodeId> = NodeId::all(10).collect();
        for threads in [1usize, 2, 4] {
            let mut engine = DistanceEngine::new(&spec, cfg.clone());
            let computed = engine.prefill_oracle_rows(&nodes, threads);
            assert_eq!(computed, 10 * 9, "all rows were cold");
            for u in NodeId::all(10) {
                assert_eq!(
                    engine.best_response(u, &opts()).unwrap(),
                    best_response::exact(&spec, &cfg, u, &opts()).unwrap(),
                    "threads {threads} node {u}"
                );
            }
            assert_eq!(
                engine.stats().oracle_rows_computed,
                90,
                "searches after prefill must be pure cache hits (threads {threads})"
            );
        }
    }

    #[test]
    fn prefilled_best_response_matches_plain_for_every_thread_count() {
        let spec = GameSpec::uniform(9, 2);
        let cfg = Configuration::random(&spec, 11);
        for threads in [1usize, 2, 4] {
            let mut engine = DistanceEngine::new(&spec, cfg.clone());
            for u in NodeId::all(9) {
                assert_eq!(
                    engine.best_response_prefilled(u, &opts(), threads).unwrap(),
                    best_response::exact(&spec, &cfg, u, &opts()).unwrap(),
                    "threads {threads} node {u}"
                );
            }
        }
    }

    #[test]
    fn prefilled_best_response_skips_prefill_on_memo_hit() {
        let spec = GameSpec::uniform(6, 1);
        let mut engine = DistanceEngine::new(&spec, Configuration::empty(6));
        let u = NodeId::new(0);
        let a = engine.best_response_prefilled(u, &opts(), 4).unwrap();
        let rows_after_first = engine.stats().oracle_rows_computed;
        let b = engine.best_response_prefilled(u, &opts(), 4).unwrap();
        assert_eq!(a, b);
        assert_eq!(
            engine.stats().oracle_rows_computed,
            rows_after_first,
            "a memoized outcome must not trigger a prefill"
        );
        assert_eq!(engine.stats().outcome_hits, 1);
    }

    #[test]
    fn weighted_and_max_games_work_through_engine() {
        let spec = GameSpec::builder(6)
            .default_budget(2)
            .weight(0, 3, 9)
            .link_length(0, 1, 4)
            .link_cost(0, 2, 2)
            .cost_model(CostModel::MaxDistance)
            .build()
            .unwrap();
        let cfg = Configuration::random(&spec, 2);
        let mut engine = DistanceEngine::new(&spec, cfg.clone());
        for u in NodeId::all(6) {
            assert_eq!(
                engine.best_response(u, &opts()).unwrap(),
                best_response::exact(&spec, &cfg, u, &opts()).unwrap()
            );
        }
        assert_eq!(
            engine.node_costs(),
            crate::reference::node_costs(&spec, &cfg)
        );
    }

    /// Restricts `spec` to the live nodes as a fresh, dense game (same
    /// penalty, relabeled ids) — the executable reference for masked
    /// aggregation: distances and costs among live nodes must be identical
    /// because departed nodes carry no arcs.
    fn compact_spec(spec: &GameSpec, live: &[NodeId]) -> (GameSpec, Vec<usize>) {
        let mut b = GameSpec::builder(live.len()).cost_model(spec.cost_model());
        for (i, &u) in live.iter().enumerate() {
            b = b.budget(i, spec.budget(u));
            for (j, &v) in live.iter().enumerate() {
                if i == j {
                    continue;
                }
                b = b
                    .weight(i, j, spec.weight(u, v))
                    .link_cost(i, j, spec.link_cost(u, v))
                    .link_length(i, j, spec.link_length(u, v));
            }
        }
        let compact = b
            .penalty(spec.penalty())
            .build()
            .expect("penalty of the full game dominates the restricted one");
        let back: Vec<usize> = live.iter().map(|u| u.index()).collect();
        (compact, back)
    }

    #[test]
    fn remove_then_readd_is_byte_identical_to_fresh_build() {
        let spec = GameSpec::uniform(8, 2);
        let mut engine = DistanceEngine::new(&spec, Configuration::random(&spec, 9));
        // Warm every cache, then churn.
        for u in NodeId::all(8) {
            engine.best_response(u, &opts()).unwrap();
        }
        let victim = NodeId::new(3);
        let held = engine.config().strategy(victim).to_vec();
        engine.remove_node(victim).unwrap();
        engine
            .add_node(victim, held)
            .expect("old strategy targets only live nodes");

        let mut live = bbc_graph::BitSet::new(8);
        for v in 0..8 {
            live.insert(v);
        }
        let fresh = DistanceEngine::with_membership(&spec, engine.config().clone(), &live).unwrap();
        assert_eq!(engine.state_digest(), fresh.state_digest());
        // And with the node still absent, the digest matches a fresh
        // partial-membership build too.
        engine.remove_node(victim).unwrap();
        live.remove(3);
        let fresh = DistanceEngine::with_membership(&spec, engine.config().clone(), &live).unwrap();
        assert_eq!(engine.state_digest(), fresh.state_digest());
    }

    #[test]
    fn masked_engine_matches_compact_relabeled_game() {
        // Remove two nodes from an (8,2)-uniform game; every live cost and
        // best response must match the dense 6-node game with the same
        // penalty, modulo relabeling.
        let spec = GameSpec::uniform(8, 2);
        let mut engine = DistanceEngine::new(&spec, Configuration::random(&spec, 4));
        engine.remove_node(NodeId::new(2)).unwrap();
        engine.remove_node(NodeId::new(5)).unwrap();
        let live: Vec<NodeId> = engine.live_nodes().collect();
        let (cspec, back) = compact_spec(&spec, &live);
        let clists: Vec<Vec<NodeId>> = live
            .iter()
            .map(|&u| {
                engine
                    .config()
                    .strategy(u)
                    .iter()
                    .map(|t| NodeId::new(back.iter().position(|&b| b == t.index()).unwrap()))
                    .collect()
            })
            .collect();
        let ccfg = Configuration::from_strategies(&cspec, clists).unwrap();
        for (i, &u) in live.iter().enumerate() {
            assert_eq!(
                engine.node_cost(u),
                crate::reference::node_costs(&cspec, &ccfg)[i],
                "node {u}"
            );
            let masked = engine.best_response(u, &opts()).unwrap();
            let compact = best_response::exact(&cspec, &ccfg, NodeId::new(i), &opts()).unwrap();
            assert_eq!(masked.current_cost, compact.current_cost, "node {u}");
            assert_eq!(masked.best_cost, compact.best_cost, "node {u}");
            assert_eq!(masked.optimal, compact.optimal, "node {u}");
            let relabeled: Vec<NodeId> = compact
                .best_strategy
                .iter()
                .map(|t| NodeId::new(back[t.index()]))
                .collect();
            assert_eq!(masked.best_strategy, relabeled, "node {u}");
        }
    }

    #[test]
    fn departed_nodes_cost_zero_and_reject_operations() {
        let spec = GameSpec::uniform(5, 1);
        let mut engine = DistanceEngine::new(&spec, Configuration::random(&spec, 1));
        let u = NodeId::new(2);
        engine.remove_node(u).unwrap();
        assert_eq!(engine.node_cost(u), 0);
        assert_eq!(engine.live_count(), 4);
        assert!(!engine.is_live(u));
        assert_eq!(
            engine.best_response(u, &opts()),
            Err(crate::Error::NodeNotLive { node: u })
        );
        assert_eq!(
            engine.remove_node(u),
            Err(crate::Error::NodeNotLive { node: u })
        );
        assert_eq!(
            engine.apply_strategy(NodeId::new(0), vec![u]),
            Err(crate::Error::TargetNotLive {
                node: NodeId::new(0),
                target: u
            })
        );
        assert_eq!(
            engine.add_node(NodeId::new(0), vec![]),
            Err(crate::Error::NodeAlreadyLive {
                node: NodeId::new(0)
            })
        );
        // No live node still links to the departed one.
        for w in engine.live_nodes() {
            assert!(!engine.config().strategy(w).contains(&u));
        }
    }

    #[test]
    fn masked_prefill_is_thread_invariant() {
        let spec = GameSpec::uniform(9, 2);
        let build = |threads: usize| {
            let mut engine = DistanceEngine::new(&spec, Configuration::random(&spec, 13));
            engine.remove_node(NodeId::new(4)).unwrap();
            engine.remove_node(NodeId::new(7)).unwrap();
            let live: Vec<NodeId> = engine.live_nodes().collect();
            engine.prefill_oracle_rows(&live, threads);
            let outs: Vec<_> = live
                .iter()
                .map(|&u| engine.best_response(u, &opts()).unwrap())
                .collect();
            (outs, engine.stats().oracle_rows_computed)
        };
        let (base, base_rows) = build(1);
        for threads in [2usize, 4] {
            let (outs, rows) = build(threads);
            assert_eq!(outs, base, "threads {threads}");
            assert_eq!(rows, base_rows, "threads {threads}");
        }
    }

    #[test]
    fn leave_rejoin_keeps_own_oracle_rows_warm() {
        // The incremental claim: a departed node's own deviation rows are
        // rows of `G∖u`, which its departure does not change. When `u` has
        // no in-links, its leave/rejoin patches only `u` itself — and
        // `G∖u` traversals never expand `u` — so re-asking its best
        // response after the round trip recomputes *zero* rows.
        let spec = GameSpec::uniform(6, 1);
        // 0→1→2→0 ring; 3→4, 4→5, 5→4: nobody links to 3.
        let cfg = Configuration::from_strategies(
            &spec,
            vec![
                vec![NodeId::new(1)],
                vec![NodeId::new(2)],
                vec![NodeId::new(0)],
                vec![NodeId::new(4)],
                vec![NodeId::new(5)],
                vec![NodeId::new(4)],
            ],
        )
        .unwrap();
        let mut engine = DistanceEngine::new(&spec, cfg);
        let u = NodeId::new(3);
        engine.best_response(u, &opts()).unwrap();
        let rows_before = engine.stats().oracle_rows_computed;
        engine.remove_node(u).unwrap();
        engine.add_node(u, vec![NodeId::new(4)]).unwrap();
        engine.best_response(u, &opts()).unwrap();
        assert_eq!(
            engine.stats().oracle_rows_computed,
            rows_before,
            "an in-link-free leave/rejoin must be a pure row-cache hit"
        );
    }

    #[test]
    fn connectivity_tracks_patches() {
        let spec = GameSpec::uniform(4, 1);
        let ring = Configuration::from_strategies(
            &spec,
            (0..4).map(|i| vec![NodeId::new((i + 1) % 4)]).collect(),
        )
        .unwrap();
        let mut engine = DistanceEngine::new(&spec, ring);
        assert!(engine.is_strongly_connected());
        engine.apply_strategy(NodeId::new(0), vec![]).unwrap();
        assert!(!engine.is_strongly_connected());
    }

    // ----- row tiers -------------------------------------------------

    #[test]
    fn tier_auto_straddles_the_u32_boundary() {
        // n = 16, so n·M crosses 2³² exactly at M = 2²⁸. One below fits
        // the narrow word; at the boundary the product equals 2³² which
        // exceeds u32::MAX = 2³² − 1, so the engine must fall back.
        let below = GameSpec::uniform(16, 1)
            .with_penalty((1 << 28) - 1)
            .unwrap();
        let at = GameSpec::uniform(16, 1).with_penalty(1 << 28).unwrap();
        assert_eq!(RowTier::auto(&below), RowTier::U32);
        assert_eq!(RowTier::auto(&at), RowTier::U64);
        assert_eq!(
            DistanceEngine::new(&below, Configuration::empty(16)).row_tier(),
            RowTier::U32
        );
        assert_eq!(
            DistanceEngine::new(&at, Configuration::empty(16)).row_tier(),
            RowTier::U64
        );
    }

    #[test]
    fn tier_auto_survives_penalty_products_beyond_u64() {
        // n·M overflows u64 entirely; checked_mul must trip, not wrap.
        let spec = GameSpec::uniform(64, 1).with_penalty(u64::MAX / 2).unwrap();
        assert_eq!(RowTier::auto(&spec), RowTier::U64);
    }

    #[test]
    fn forced_u32_rejects_an_oversized_spec() {
        let spec = GameSpec::uniform(16, 1).with_penalty(1 << 28).unwrap();
        let err = DistanceEngine::with_tier(&spec, Configuration::empty(16), RowTier::U32)
            .expect_err("a 2³² product cannot ride the u32 tier");
        assert_eq!(
            err,
            Error::RowTierOverflow {
                n: 16,
                penalty: 1 << 28
            }
        );
    }

    #[test]
    fn forced_u64_matches_the_u32_tier_exactly() {
        let spec = GameSpec::uniform(8, 2);
        assert_eq!(RowTier::auto(&spec), RowTier::U32);
        for seed in 0..4 {
            let cfg = Configuration::random(&spec, seed);
            let mut narrow = DistanceEngine::new(&spec, cfg.clone());
            let mut wide = DistanceEngine::with_tier(&spec, cfg, RowTier::U64).unwrap();
            assert_eq!(narrow.node_costs(), wide.node_costs(), "seed {seed}");
            for u in NodeId::all(8) {
                let a = narrow.best_response(u, &opts()).unwrap();
                let b = wide.best_response(u, &opts()).unwrap();
                assert_eq!(a, b, "seed {seed} node {u}");
            }
            assert_eq!(narrow.state_digest(), wide.state_digest());
        }
    }

    // ----- landmark bound cache --------------------------------------

    #[test]
    fn unchanged_engine_never_rebuilds_landmark_rows() {
        let spec = GameSpec::uniform(10, 2);
        let cfg = Configuration::random(&spec, 5);
        let mut engine = DistanceEngine::new(&spec, cfg).with_landmarks(LandmarkPolicy::Forced(4));
        engine.best_response(NodeId::new(0), &opts()).unwrap();
        let rows_after_first = engine.stats().landmark_rows_computed;
        assert_eq!(rows_after_first, 4, "first query builds the forced set");
        engine.best_response(NodeId::new(1), &opts()).unwrap();
        engine.best_response(NodeId::new(2), &opts()).unwrap();
        assert_eq!(
            engine.stats().landmark_rows_computed,
            rows_after_first,
            "consecutive queries on an unchanged engine must reuse every cached landmark row"
        );
    }

    #[test]
    fn landmark_engine_tracks_moves_and_stays_exact() {
        let spec = GameSpec::uniform(9, 2);
        let mut cfg = Configuration::random(&spec, 8);
        let mut pruned =
            DistanceEngine::new(&spec, cfg.clone()).with_landmarks(LandmarkPolicy::Forced(3));
        assert_eq!(pruned.landmark_policy(), LandmarkPolicy::Forced(3));
        for step in 0..40u64 {
            let mover = NodeId::new((step % 9) as usize);
            let out = pruned.best_response(mover, &opts()).unwrap();
            let exact = best_response::exact(&spec, &cfg, mover, &opts()).unwrap();
            assert!(
                out.same_decision(&exact),
                "step {step}: {out:?} vs {exact:?}"
            );
            assert_eq!(out.best_cost, exact.best_cost, "step {step}");
            assert_eq!(out.current_cost, exact.current_cost, "step {step}");
            if out.improves() {
                pruned
                    .apply_strategy(mover, out.best_strategy.clone())
                    .unwrap();
                cfg.set_strategy(&spec, mover, out.best_strategy).unwrap();
            }
        }
        let stats = pruned.stats();
        assert!(
            stats.landmark_rows_computed >= 3,
            "the forced set was built at least once"
        );
    }

    #[test]
    fn landmark_decisions_match_exact_across_membership_churn() {
        let spec = GameSpec::uniform(12, 2);
        let cfg = Configuration::random(&spec, 2);
        let mut pruned =
            DistanceEngine::new(&spec, cfg.clone()).with_landmarks(LandmarkPolicy::Forced(4));
        let mut plain = DistanceEngine::new(&spec, cfg);
        let compare_all = |a: &mut DistanceEngine, b: &mut DistanceEngine| {
            let live: Vec<NodeId> = a.live_nodes().collect();
            for u in live {
                let x = a.best_response(u, &opts()).unwrap();
                let y = b.best_response(u, &opts()).unwrap();
                assert!(x.same_decision(&y), "node {u}: {x:?} vs {y:?}");
                assert_eq!(x.best_cost, y.best_cost, "node {u}");
            }
        };
        compare_all(&mut pruned, &mut plain);
        for victim in [NodeId::new(5), NodeId::new(0)] {
            pruned.remove_node(victim).unwrap();
            plain.remove_node(victim).unwrap();
            compare_all(&mut pruned, &mut plain);
        }
        pruned
            .add_node(NodeId::new(5), vec![NodeId::new(3)])
            .unwrap();
        plain
            .add_node(NodeId::new(5), vec![NodeId::new(3)])
            .unwrap();
        compare_all(&mut pruned, &mut plain);
        // Landmarks were re-picked over the live set after each membership
        // change; none may ever be a departed node.
        assert!(pruned.stats().landmark_rows_computed >= 4);
    }

    #[test]
    fn policy_change_resets_the_landmark_set() {
        let spec = GameSpec::uniform(10, 2);
        let cfg = Configuration::random(&spec, 3);
        let mut engine =
            DistanceEngine::new(&spec, cfg.clone()).with_landmarks(LandmarkPolicy::Forced(2));
        let u = NodeId::new(4);
        let a = engine.best_response(u, &opts()).unwrap();
        assert_eq!(engine.stats().landmark_rows_computed, 2);
        engine.set_landmark_policy(LandmarkPolicy::Forced(5));
        // Memoized outcome survives the policy switch (decisions are
        // policy-independent); a different node forces a fresh search.
        assert_eq!(engine.best_response(u, &opts()).unwrap(), a);
        let v = NodeId::new(7);
        let b = engine.best_response(v, &opts()).unwrap();
        assert_eq!(
            engine.stats().landmark_rows_computed,
            2 + 5,
            "resizing rebuilds the whole set"
        );
        assert!(b.same_decision(&best_response::exact(&spec, &cfg, v, &opts()).unwrap()));
        engine.set_landmark_policy(LandmarkPolicy::Off);
        let c = engine.best_response(NodeId::new(8), &opts()).unwrap();
        assert_eq!(
            engine.stats().landmark_rows_computed,
            7,
            "Off builds nothing"
        );
        assert!(
            c.same_decision(&best_response::exact(&spec, &cfg, NodeId::new(8), &opts()).unwrap())
        );
    }
}

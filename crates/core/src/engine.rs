//! The CSR distance engine: a shared, cached shortest-path substrate.
//!
//! Every quantity this workspace measures — node costs, best responses,
//! dynamics walks, stability sweeps, equilibrium enumeration — bottoms out in
//! repeated single-source shortest-path runs over the configuration graph.
//! [`DistanceEngine`] is the one place those runs happen. It keeps:
//!
//! * a [`CsrGraph`] mirror of the bound configuration, patched **in place**
//!   when one node rewires (a best-response move rewrites one arc slab, not
//!   the graph);
//! * a memo of the strategy-independent deviation rows `d_{G∖u}(c, ·)` — the
//!   rows Lemmas 3–5 price every strategy of `u` with — plus each row's
//!   *touched set* (the nodes whose out-arcs the traversal expanded). A
//!   dynamics step that moves node `m` invalidates only rows whose touched
//!   set contains `m`: an untouched node's out-links cannot affect any
//!   cached distance, and rewiring `m`'s out-links never changes whether `m`
//!   itself is reached;
//! * a memo of full [`crate::best_response`] outcomes per node, reused until
//!   a row it depends on is invalidated or the node itself moves — in the
//!   tail of a converging walk this turns `n − 1` confirmation tests per
//!   round into cache hits;
//! * per-node distance rows from `u` in `G` (the [`crate::Evaluator`]
//!   substrate), cached under the same invalidation rule.
//!
//! Cache-invalidation rules, in one table:
//!
//! | cached item                | invalidated by a rewire of `m` when |
//! |----------------------------|--------------------------------------|
//! | oracle row `d_{G∖u}(c,·)` | `m ≠ u` and `m` ∈ row's touched set |
//! | best-response outcome of `u` | any of `u`'s rows invalidated, or `m = u` |
//! | eval row `d_G(u,·)`        | `m` ∈ row's touched set (`m = u` always is) |
//!
//! Row filling can be spread across OS threads with
//! [`DistanceEngine::prefill_oracle_rows`] (`std::thread::scope`; no new
//! dependencies): traversals read the shared CSR immutably and results are
//! written back in deterministic `(u, candidate)` order, so thread count
//! never changes any value.

use bbc_graph::{BitSet, ConnectivityScratch, CsrBfs, CsrDijkstra, CsrGraph};

use crate::{
    best_response::{
        min_into, push_clamped_row, run_search, weighted_targets_of, OracleView, SearchScratch,
    },
    eval::cost_from_distances,
    BestResponseOptions, BestResponseOutcome, Configuration, GameSpec, NodeId, Result,
};

/// A filled row in flight from a worker thread back to the cache:
/// `(deviating node, candidate index, distances, touched set)`.
type FilledRow = (usize, usize, Vec<u64>, BitSet);

/// One cached shortest-path row plus its invalidation metadata.
#[derive(Clone, Debug)]
struct RowSlot {
    valid: bool,
    /// Raw distances (with [`bbc_graph::UNREACHABLE`] preserved).
    dist: Vec<u64>,
    /// Nodes whose out-arcs the traversal expanded.
    touched: BitSet,
}

impl RowSlot {
    fn new(n: usize) -> Self {
        Self {
            valid: false,
            dist: vec![0; n],
            touched: BitSet::new(n),
        }
    }
}

/// Per-deviating-node oracle cache: the static candidate pool and one
/// [`RowSlot`] per candidate, plus the memoized search outcome.
#[derive(Debug, Default)]
struct OracleCache {
    init: bool,
    candidates: Vec<NodeId>,
    prices: Vec<u64>,
    weighted_targets: Vec<(u32, u64)>,
    budget: u64,
    rows: Vec<RowSlot>,
    outcome: Option<(BestResponseOptions, BestResponseOutcome)>,
}

/// Cache effectiveness counters (monotone; see [`DistanceEngine::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Shortest-path traversals actually run for oracle rows.
    pub oracle_rows_computed: u64,
    /// Oracle rows served from cache inside a best-response call.
    pub oracle_row_hits: u64,
    /// Whole best-response outcomes served from cache.
    pub outcome_hits: u64,
    /// Best-response searches actually run.
    pub searches_run: u64,
    /// Cached rows invalidated by strategy patches.
    pub rows_invalidated: u64,
    /// Strategy patches applied to the CSR mirror.
    pub patches_applied: u64,
    /// Traversals run for evaluator (distance-from-`u`) rows.
    pub eval_rows_computed: u64,
}

/// A shared, cached, incrementally-patched shortest-path engine bound to one
/// game and tracking one configuration.
///
/// Create it once per walk/scan and thread it through every step; see the
/// module docs for what is cached and when it is invalidated.
///
/// # Examples
///
/// ```
/// use bbc_core::{BestResponseOptions, Configuration, DistanceEngine, GameSpec, NodeId};
///
/// let spec = GameSpec::uniform(6, 1);
/// let mut engine = DistanceEngine::new(&spec, Configuration::empty(6));
/// let options = BestResponseOptions::default();
/// let out = engine.best_response(NodeId::new(0), &options)?;
/// assert!(out.improves(), "a disconnected node always wants a link");
/// // Re-asking without a graph change is a cache hit.
/// let again = engine.best_response(NodeId::new(0), &options)?;
/// assert_eq!(out, again);
/// assert_eq!(engine.stats().outcome_hits, 1);
/// # Ok::<(), bbc_core::Error>(())
/// ```
#[derive(Debug)]
pub struct DistanceEngine<'a> {
    spec: &'a GameSpec,
    config: Configuration,
    csr: CsrGraph,
    bfs: CsrBfs,
    dijkstra: CsrDijkstra,
    conn: ConnectivityScratch,
    oracle: Vec<OracleCache>,
    eval_rows: Vec<RowSlot>,
    eval_costs: Vec<Option<u64>>,
    /// Clamped through-rows staged for one search (stride `n`).
    clamped: Vec<u64>,
    current_row: Vec<u64>,
    search_scratch: SearchScratch,
    link_scratch: Vec<(u32, u64)>,
    stats: EngineStats,
}

impl<'a> DistanceEngine<'a> {
    /// Creates an engine for `spec`, bound to `config`.
    ///
    /// # Panics
    ///
    /// Panics if `config`'s node count differs from the spec's.
    pub fn new(spec: &'a GameSpec, config: Configuration) -> Self {
        let n = spec.node_count();
        assert_eq!(config.node_count(), n, "configuration size mismatch");
        let mut csr = CsrGraph::new(n);
        let mut link_scratch = Vec::new();
        for u in NodeId::all(n) {
            fill_links(spec, u, config.strategy(u), &mut link_scratch);
            csr.set_out_links(u.index(), &link_scratch);
        }
        Self {
            spec,
            config,
            csr,
            bfs: CsrBfs::new(n),
            dijkstra: CsrDijkstra::new(n),
            conn: ConnectivityScratch::new(),
            oracle: (0..n).map(|_| OracleCache::default()).collect(),
            eval_rows: (0..n).map(|_| RowSlot::new(n)).collect(),
            eval_costs: vec![None; n],
            clamped: Vec::new(),
            current_row: vec![0; n],
            search_scratch: SearchScratch::new(),
            link_scratch,
            stats: EngineStats::default(),
        }
    }

    /// The game this engine serves.
    pub fn spec(&self) -> &'a GameSpec {
        self.spec
    }

    /// The configuration the engine is currently synced to.
    pub fn config(&self) -> &Configuration {
        &self.config
    }

    /// Consumes the engine, returning the bound configuration without
    /// copying it.
    pub fn into_config(self) -> Configuration {
        self.config
    }

    /// Cache counters accumulated since construction.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Rewires one node's strategy, patching the CSR mirror in place and
    /// invalidating exactly the cached rows whose traversal touched `u`.
    ///
    /// # Errors
    ///
    /// Returns the strategy-validation failure (see
    /// [`GameSpec::validate_strategy`]) without modifying any state.
    pub fn apply_strategy(&mut self, u: NodeId, targets: Vec<NodeId>) -> Result<()> {
        self.config.set_strategy(self.spec, u, targets)?;
        fill_links(
            self.spec,
            u,
            self.config.strategy(u),
            &mut self.link_scratch,
        );
        self.csr.set_out_links(u.index(), &self.link_scratch);
        self.stats.patches_applied += 1;
        self.invalidate_after_move(u.index());
        Ok(())
    }

    /// Re-syncs the engine to an arbitrary configuration by diffing against
    /// the bound one: only nodes whose strategy differs are patched and
    /// invalidated, so stepping an enumeration odometer costs one patch.
    pub fn sync_to(&mut self, config: &Configuration) {
        assert_eq!(
            config.node_count(),
            self.config.node_count(),
            "configuration size mismatch"
        );
        for u in NodeId::all(self.config.node_count()) {
            if self.config.strategy(u) != config.strategy(u) {
                self.apply_strategy(u, config.strategy(u).to_vec())
                    .expect("synced configuration holds valid strategies");
            }
        }
    }

    fn invalidate_after_move(&mut self, moved: usize) {
        for (u2, oc) in self.oracle.iter_mut().enumerate() {
            if !oc.init {
                continue;
            }
            if u2 == moved {
                // `G∖u2` never contained u2's arcs: rows stay, but the
                // node's own strategy (hence its current cost) changed.
                oc.outcome = None;
                continue;
            }
            let mut any = false;
            for slot in &mut oc.rows {
                if slot.valid && slot.touched.contains(moved) {
                    slot.valid = false;
                    any = true;
                    self.stats.rows_invalidated += 1;
                }
            }
            if any {
                oc.outcome = None;
            }
        }
        for (slot, cost) in self.eval_rows.iter_mut().zip(&mut self.eval_costs) {
            if slot.valid && slot.touched.contains(moved) {
                slot.valid = false;
                *cost = None;
                self.stats.rows_invalidated += 1;
            }
        }
    }

    fn ensure_oracle_init(&mut self, u: NodeId) {
        let n = self.spec.node_count();
        let oc = &mut self.oracle[u.index()];
        if oc.init {
            return;
        }
        oc.candidates = self.spec.affordable_targets(u);
        oc.prices = oc
            .candidates
            .iter()
            .map(|&c| self.spec.link_cost(u, c))
            .collect();
        oc.weighted_targets = weighted_targets_of(self.spec, u);
        oc.budget = self.spec.budget(u);
        oc.rows = oc.candidates.iter().map(|_| RowSlot::new(n)).collect();
        oc.init = true;
    }

    /// Recomputes every invalid oracle row of `u` (sequentially).
    fn ensure_oracle_rows(&mut self, u: NodeId) {
        self.ensure_oracle_init(u);
        let oc = &mut self.oracle[u.index()];
        let unit = self.spec.has_unit_lengths();
        for (i, slot) in oc.rows.iter_mut().enumerate() {
            if slot.valid {
                self.stats.oracle_row_hits += 1;
                continue;
            }
            let c = oc.candidates[i].index();
            let dist = if unit {
                self.bfs.run_skipping(&self.csr, c, u.index());
                self.bfs.distances()
            } else {
                self.dijkstra.run_skipping(&self.csr, c, u.index());
                self.dijkstra.distances()
            };
            slot.dist.copy_from_slice(dist);
            slot.touched.copy_from(if unit {
                self.bfs.touched()
            } else {
                self.dijkstra.touched()
            });
            slot.valid = true;
            self.stats.oracle_rows_computed += 1;
        }
    }

    /// Exact best response for `u` under the bound configuration, served
    /// from the outcome memo when nothing it depends on has changed.
    ///
    /// Byte-identical to [`crate::best_response::exact`] on the same
    /// configuration (the differential suite enforces this).
    ///
    /// # Errors
    ///
    /// [`crate::Error::SearchBudgetExceeded`] exactly as
    /// [`crate::best_response::exact`].
    pub fn best_response(
        &mut self,
        u: NodeId,
        options: &BestResponseOptions,
    ) -> Result<BestResponseOutcome> {
        if let Some((cached_options, outcome)) = &self.oracle[u.index()].outcome {
            if cached_options == options {
                self.stats.outcome_hits += 1;
                return Ok(outcome.clone());
            }
        }
        self.ensure_oracle_rows(u);
        let n = self.spec.node_count();
        let oc = &self.oracle[u.index()];

        // Stage the clamped through-rows for the search.
        self.clamped.clear();
        for (i, slot) in oc.rows.iter().enumerate() {
            push_clamped_row(
                &mut self.clamped,
                &slot.dist,
                self.spec.link_length(u, oc.candidates[i]),
                self.spec,
            );
        }
        let view = OracleView {
            spec: self.spec,
            node: u,
            candidates: &oc.candidates,
            rows: &self.clamped,
            prices: &oc.prices,
            weighted_targets: &oc.weighted_targets,
            budget: oc.budget,
        };

        // Price the node's current strategy through the same rows.
        self.current_row.fill(self.spec.penalty());
        for &t in self.config.strategy(u) {
            let i = oc
                .candidates
                .binary_search(&t)
                .expect("a held strategy target is always an affordable candidate");
            min_into(&mut self.current_row, &self.clamped[i * n..(i + 1) * n]);
        }
        let current_cost = view.aggregate(&self.current_row);

        let outcome = run_search(&view, current_cost, options, &mut self.search_scratch)?;
        self.stats.searches_run += 1;
        self.oracle[u.index()].outcome = Some((*options, outcome.clone()));
        Ok(outcome)
    }

    /// Cost of node `u` under the bound configuration (cached per node).
    pub fn node_cost(&mut self, u: NodeId) -> u64 {
        if let Some(cost) = self.eval_costs[u.index()] {
            return cost;
        }
        let slot = &mut self.eval_rows[u.index()];
        if !slot.valid {
            let unit = self.spec.has_unit_lengths();
            let dist = if unit {
                self.bfs.run(&self.csr, u.index());
                self.bfs.distances()
            } else {
                self.dijkstra.run(&self.csr, u.index());
                self.dijkstra.distances()
            };
            slot.dist.copy_from_slice(dist);
            slot.touched.copy_from(if unit {
                self.bfs.touched()
            } else {
                self.dijkstra.touched()
            });
            slot.valid = true;
            self.stats.eval_rows_computed += 1;
        }
        let cost = cost_from_distances(self.spec, u, &self.eval_rows[u.index()].dist);
        self.eval_costs[u.index()] = Some(cost);
        cost
    }

    /// Costs of every node under the bound configuration.
    pub fn node_costs(&mut self) -> Vec<u64> {
        NodeId::all(self.spec.node_count())
            .map(|u| self.node_cost(u))
            .collect()
    }

    /// Social cost (sum of node costs) of the bound configuration.
    pub fn social_cost(&mut self) -> u64 {
        self.node_costs().iter().sum()
    }

    /// Shortest-path distances from `u` in the bound configuration's graph
    /// (cached; unreachable targets hold [`bbc_graph::UNREACHABLE`]).
    pub fn distances_from(&mut self, u: NodeId) -> &[u64] {
        self.node_cost(u);
        &self.eval_rows[u.index()].dist
    }

    /// `true` iff the bound configuration's graph is strongly connected
    /// (allocation-free after warm-up).
    pub fn is_strongly_connected(&mut self) -> bool {
        self.conn.is_strongly_connected(&self.csr)
    }

    /// [`DistanceEngine::best_response`] with the oracle BFS fan-out on the
    /// parallel path: `u`'s missing deviation rows (up to `n − 1`
    /// traversals) are filled across `threads` OS threads via
    /// [`DistanceEngine::prefill_oracle_rows`] before the search runs.
    ///
    /// Byte-identical to [`DistanceEngine::best_response`] for every thread
    /// count (prefilling writes exactly the rows the sequential path would
    /// compute); when the memoized outcome for `(u, options)` is still
    /// valid, the prefill is skipped so a cache hit stays a cache hit.
    ///
    /// # Errors
    ///
    /// As [`DistanceEngine::best_response`].
    pub fn best_response_prefilled(
        &mut self,
        u: NodeId,
        options: &BestResponseOptions,
        threads: usize,
    ) -> Result<BestResponseOutcome> {
        let memo_valid = self.oracle[u.index()]
            .outcome
            .as_ref()
            .is_some_and(|(cached, _)| cached == options);
        if threads > 1 && !memo_valid {
            self.prefill_oracle_rows(&[u], threads);
        }
        self.best_response(u, options)
    }

    /// Fills every invalid oracle row of `nodes` across `threads` OS threads
    /// (`std::thread::scope`), returning the number of traversals run.
    ///
    /// Traversals read the shared CSR immutably; results are written back in
    /// deterministic `(node, candidate)` order, so any thread count produces
    /// the same engine state as the sequential path.
    pub fn prefill_oracle_rows(&mut self, nodes: &[NodeId], threads: usize) -> usize {
        for &u in nodes {
            self.ensure_oracle_init(u);
        }
        let mut work: Vec<(usize, usize)> = Vec::new();
        for &u in nodes {
            for (i, slot) in self.oracle[u.index()].rows.iter().enumerate() {
                if !slot.valid {
                    work.push((u.index(), i));
                }
            }
        }
        if work.is_empty() {
            return 0;
        }
        let threads = threads.clamp(1, work.len());
        if threads == 1 {
            for &u in nodes {
                self.ensure_oracle_rows(u);
            }
            return work.len();
        }

        let n = self.spec.node_count();
        let unit = self.spec.has_unit_lengths();
        let csr = &self.csr;
        let oracle = &self.oracle;
        let chunk = work.len().div_ceil(threads);
        let results: Vec<Vec<FilledRow>> = std::thread::scope(|scope| {
            let handles: Vec<_> = work
                .chunks(chunk)
                .map(|items| {
                    scope.spawn(move || {
                        let mut bfs = CsrBfs::new(n);
                        let mut dij = CsrDijkstra::new(n);
                        items
                            .iter()
                            .map(|&(u, i)| {
                                let c = oracle[u].candidates[i].index();
                                let (dist, touched) = if unit {
                                    bfs.run_skipping(csr, c, u);
                                    (bfs.distances().to_vec(), bfs.touched().clone())
                                } else {
                                    dij.run_skipping(csr, c, u);
                                    (dij.distances().to_vec(), dij.touched().clone())
                                };
                                (u, i, dist, touched)
                            })
                            .collect()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("row-filling thread panicked"))
                .collect()
        });
        let computed = work.len();
        for (u, i, dist, touched) in results.into_iter().flatten() {
            let slot = &mut self.oracle[u].rows[i];
            slot.dist.copy_from_slice(&dist);
            slot.touched.copy_from(&touched);
            slot.valid = true;
        }
        self.stats.oracle_rows_computed += computed as u64;
        computed
    }
}

/// Assembles `(target, length)` pairs for one node's strategy.
fn fill_links(spec: &GameSpec, u: NodeId, targets: &[NodeId], out: &mut Vec<(u32, u64)>) {
    out.clear();
    out.extend(
        targets
            .iter()
            .map(|&v| (v.index() as u32, spec.link_length(u, v))),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{best_response, CostModel};

    fn opts() -> BestResponseOptions {
        BestResponseOptions::default()
    }

    #[test]
    fn engine_best_response_matches_one_shot() {
        let spec = GameSpec::uniform(8, 2);
        for seed in 0..5 {
            let cfg = Configuration::random(&spec, seed);
            let mut engine = DistanceEngine::new(&spec, cfg.clone());
            for u in NodeId::all(8) {
                assert_eq!(
                    engine.best_response(u, &opts()).unwrap(),
                    best_response::exact(&spec, &cfg, u, &opts()).unwrap(),
                    "seed {seed} node {u}"
                );
            }
        }
    }

    #[test]
    fn engine_stays_correct_across_moves() {
        let spec = GameSpec::uniform(7, 2);
        let mut cfg = Configuration::random(&spec, 3);
        let mut engine = DistanceEngine::new(&spec, cfg.clone());
        // Interleave queries and moves; every post-move answer must match a
        // from-scratch computation.
        for step in 0..30u64 {
            let mover = NodeId::new((step % 7) as usize);
            let out = engine.best_response(mover, &opts()).unwrap();
            assert_eq!(
                out,
                best_response::exact(&spec, &cfg, mover, &opts()).unwrap(),
                "step {step}"
            );
            if out.improves() {
                engine
                    .apply_strategy(mover, out.best_strategy.clone())
                    .unwrap();
                cfg.set_strategy(&spec, mover, out.best_strategy).unwrap();
            }
            assert_eq!(
                engine.node_costs(),
                crate::reference::node_costs(&spec, &cfg)
            );
        }
        // A churning dense graph invalidates aggressively — correctness of
        // the answers above is the point; here just sanity-check the
        // counters stay coherent.
        let stats = engine.stats();
        assert_eq!(stats.searches_run + stats.outcome_hits, 30);
        assert!(stats.patches_applied > 0);
    }

    #[test]
    fn outcome_cache_hits_and_invalidates() {
        let spec = GameSpec::uniform(6, 1);
        let mut engine = DistanceEngine::new(&spec, Configuration::empty(6));
        let u = NodeId::new(0);
        let a = engine.best_response(u, &opts()).unwrap();
        let b = engine.best_response(u, &opts()).unwrap();
        assert_eq!(a, b);
        assert_eq!(engine.stats().outcome_hits, 1);
        // A move by the node itself keeps its rows but drops its outcome.
        engine.apply_strategy(u, a.best_strategy.clone()).unwrap();
        let c = engine.best_response(u, &opts()).unwrap();
        assert!(
            !c.improves(),
            "a node is stable right after best-responding"
        );
        assert_eq!(engine.stats().outcome_hits, 1, "self-move drops the memo");
    }

    #[test]
    fn differing_options_bypass_outcome_cache() {
        let spec = GameSpec::uniform(6, 2);
        let mut engine = DistanceEngine::new(&spec, Configuration::empty(6));
        let u = NodeId::new(2);
        let full = engine.best_response(u, &opts()).unwrap();
        let first = BestResponseOptions {
            stop_at_first_improvement: true,
            ..opts()
        };
        let early = engine.best_response(u, &first).unwrap();
        assert!(early.evaluations <= full.evaluations);
        assert_eq!(
            early,
            best_response::exact(&spec, engine.config(), u, &first).unwrap()
        );
    }

    #[test]
    fn sync_to_diffs_only_changed_nodes() {
        let spec = GameSpec::uniform(6, 2);
        let a = Configuration::random(&spec, 1);
        let mut b = a.clone();
        b.set_strategy(&spec, NodeId::new(3), vec![NodeId::new(0)])
            .unwrap();
        let mut engine = DistanceEngine::new(&spec, a);
        engine.node_costs();
        engine.sync_to(&b);
        assert_eq!(engine.stats().patches_applied, 1);
        assert_eq!(engine.node_costs(), crate::reference::node_costs(&spec, &b));
    }

    #[test]
    fn parallel_prefill_matches_sequential_state() {
        let spec = GameSpec::uniform(10, 2);
        let cfg = Configuration::random(&spec, 5);
        let nodes: Vec<NodeId> = NodeId::all(10).collect();
        for threads in [1usize, 2, 4] {
            let mut engine = DistanceEngine::new(&spec, cfg.clone());
            let computed = engine.prefill_oracle_rows(&nodes, threads);
            assert_eq!(computed, 10 * 9, "all rows were cold");
            for u in NodeId::all(10) {
                assert_eq!(
                    engine.best_response(u, &opts()).unwrap(),
                    best_response::exact(&spec, &cfg, u, &opts()).unwrap(),
                    "threads {threads} node {u}"
                );
            }
            assert_eq!(
                engine.stats().oracle_rows_computed,
                90,
                "searches after prefill must be pure cache hits (threads {threads})"
            );
        }
    }

    #[test]
    fn prefilled_best_response_matches_plain_for_every_thread_count() {
        let spec = GameSpec::uniform(9, 2);
        let cfg = Configuration::random(&spec, 11);
        for threads in [1usize, 2, 4] {
            let mut engine = DistanceEngine::new(&spec, cfg.clone());
            for u in NodeId::all(9) {
                assert_eq!(
                    engine.best_response_prefilled(u, &opts(), threads).unwrap(),
                    best_response::exact(&spec, &cfg, u, &opts()).unwrap(),
                    "threads {threads} node {u}"
                );
            }
        }
    }

    #[test]
    fn prefilled_best_response_skips_prefill_on_memo_hit() {
        let spec = GameSpec::uniform(6, 1);
        let mut engine = DistanceEngine::new(&spec, Configuration::empty(6));
        let u = NodeId::new(0);
        let a = engine.best_response_prefilled(u, &opts(), 4).unwrap();
        let rows_after_first = engine.stats().oracle_rows_computed;
        let b = engine.best_response_prefilled(u, &opts(), 4).unwrap();
        assert_eq!(a, b);
        assert_eq!(
            engine.stats().oracle_rows_computed,
            rows_after_first,
            "a memoized outcome must not trigger a prefill"
        );
        assert_eq!(engine.stats().outcome_hits, 1);
    }

    #[test]
    fn weighted_and_max_games_work_through_engine() {
        let spec = GameSpec::builder(6)
            .default_budget(2)
            .weight(0, 3, 9)
            .link_length(0, 1, 4)
            .link_cost(0, 2, 2)
            .cost_model(CostModel::MaxDistance)
            .build()
            .unwrap();
        let cfg = Configuration::random(&spec, 2);
        let mut engine = DistanceEngine::new(&spec, cfg.clone());
        for u in NodeId::all(6) {
            assert_eq!(
                engine.best_response(u, &opts()).unwrap(),
                best_response::exact(&spec, &cfg, u, &opts()).unwrap()
            );
        }
        assert_eq!(
            engine.node_costs(),
            crate::reference::node_costs(&spec, &cfg)
        );
    }

    #[test]
    fn connectivity_tracks_patches() {
        let spec = GameSpec::uniform(4, 1);
        let ring = Configuration::from_strategies(
            &spec,
            (0..4).map(|i| vec![NodeId::new((i + 1) % 4)]).collect(),
        )
        .unwrap();
        let mut engine = DistanceEngine::new(&spec, ring);
        assert!(engine.is_strongly_connected());
        engine.apply_strategy(NodeId::new(0), vec![]).unwrap();
        assert!(!engine.is_strongly_connected());
    }
}

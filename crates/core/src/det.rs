//! Deterministic hashed collections: the blessed pattern for `bbc-lint`'s
//! L1 determinism rule.
//!
//! `std`'s default hasher is seeded per process and its algorithm is
//! explicitly unspecified across Rust versions. A randomly-seeded map is
//! fine right up until someone iterates it — at which point a byte-identity
//! contract (decisions, trajectories, stream digests) silently depends on
//! process entropy. Rather than audit every future call site for
//! iteration, library code uses these version-pinned FNV-1a aliases
//! wholesale: lookups behave identically, iteration order is a pure
//! function of the inserted keys, and the allocation/timing profile stays
//! reproducible in traces and benchmarks.
//!
//! FNV-1a is not DoS-resistant; nothing here hashes attacker-controlled
//! input. If that ever changes, swap the hasher for a keyed one seeded
//! from the run's fingerprint — not from process entropy.

use std::collections::{HashMap, HashSet}; // bbc-lint: allow(determinism, this module defines the pinned-hasher aliases)
use std::hash::{BuildHasherDefault, Hasher};

/// FNV-1a with the fixed 64-bit offset basis; version-pinned constants.
#[derive(Clone, Copy, Debug)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for Fnv1a {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// `HashMap` with the pinned FNV-1a hasher: deterministic iteration order
/// for a given insertion history, across processes and Rust versions.
pub type DetHashMap<K, V> = HashMap<K, V, BuildHasherDefault<Fnv1a>>;

/// `HashSet` with the pinned FNV-1a hasher.
pub type DetHashSet<K> = HashSet<K, BuildHasherDefault<Fnv1a>>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    #[test]
    fn hash_values_are_version_pinned() {
        // FNV-1a reference vectors: any drift here would change walk-history
        // memory layouts (and anything that ever iterates a Det map).
        let hash = |bytes: &[u8]| {
            let mut h = Fnv1a::default();
            h.write(bytes);
            h.finish()
        };
        assert_eq!(hash(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(hash(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(hash(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn iteration_order_is_a_function_of_insertions() {
        let build = || {
            let mut m = DetHashMap::default();
            for k in [3u64, 1, 4, 1, 5, 9, 2, 6] {
                m.insert(k, k * 10);
            }
            m.into_iter().collect::<Vec<_>>()
        };
        assert_eq!(build(), build());

        let hasher = BuildHasherDefault::<Fnv1a>::default();
        assert_eq!(hasher.hash_one(7u64), hasher.hash_one(7u64));
    }
}

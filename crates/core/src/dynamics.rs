//! Best-response dynamics: walks over the configuration space (§4.3).
//!
//! In each step one node tests its stability and, if unstable, moves all its
//! links to a cost-optimal set (ties favour staying put, so walks are
//! deterministic for deterministic schedulers). The engine tracks:
//!
//! * convergence to a pure Nash equilibrium ([`WalkOutcome::Equilibrium`]),
//! * exact revisits of a `(configuration, scheduler)` state, which certify a
//!   best-response *loop* ([`WalkOutcome::Cycle`]) — the paper's Figure 4
//!   evidence that uniform BBC games are not ordinal potential games,
//! * the first step at which the network becomes strongly connected, the
//!   quantity bounded by `n²` in Theorem 6.

use std::collections::BTreeSet;
use std::ops::Bound;

use rand::{rngs::SmallRng, Rng, SeedableRng};
use serde::{Deserialize, Serialize};

// The walk history map is lookup-only (keys are compared with `Eq` and the
// map is never iterated), so even a random hasher could not leak into walk
// *outcomes* — but the pinned [`crate::det`] hasher keeps the walk's memory
// layout, and therefore its exact allocation/timing profile in traces and
// benchmarks, reproducible too.
use crate::det::DetHashMap;
use crate::{
    best_response::BestResponseOptions, Configuration, DistanceEngine, GameSpec, NodeId, Result,
};

/// Which node moves next.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scheduler {
    /// Nodes take turns in id order, `v0, v1, …, v(n−1), v0, …`.
    RoundRobin,
    /// Nodes take turns in the given fixed order (must be a permutation of
    /// all nodes). Used by the Ω(n²) lower-bound instance, whose round order
    /// the paper prescribes explicitly.
    RoundRobinOrder(Vec<NodeId>),
    /// Among currently-unstable nodes, the one with the maximum cost moves
    /// (ties broken by lowest id). The §4.3 "max-cost first" policy.
    MaxCostFirst,
    /// A uniformly random node is offered the move each step (seeded).
    Random {
        /// RNG seed; identical seeds replay identical walks.
        seed: u64,
    },
}

/// One applied move in a walk trace.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MoveRecord {
    /// Step index at which the move happened (0-based).
    pub step: u64,
    /// The node that rewired.
    pub node: NodeId,
    /// Strategy before the move.
    pub old_strategy: Vec<NodeId>,
    /// Strategy after the move.
    pub new_strategy: Vec<NodeId>,
    /// Cost before the move.
    pub old_cost: u64,
    /// Cost after the move.
    pub new_cost: u64,
}

/// How a walk ended.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum WalkOutcome {
    /// Reached a pure Nash equilibrium.
    Equilibrium {
        /// Total best-response steps taken (stability tests, not only moves).
        steps: u64,
    },
    /// Revisited an exact `(configuration, scheduler-position)` state: the
    /// walk loops forever. Certifies that the game is not an ordinal
    /// potential game.
    Cycle {
        /// Step at which the repeated state was first seen.
        first_seen_step: u64,
        /// Steps between the two visits (the loop length).
        period: u64,
    },
    /// The step limit expired first.
    StepLimit {
        /// Steps executed when the walk stopped. Equals the limit for
        /// one-test-per-step schedulers; a max-cost-first scan is atomic
        /// (every node it probes counts), so the walk may end a few tests
        /// past the limit.
        steps: u64,
    },
}

/// Statistics accumulated along a walk.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WalkStats {
    /// Best-response steps executed (every stability test counts).
    pub steps: u64,
    /// Steps that actually changed a strategy.
    pub moves: u64,
    /// First step index after which the network was strongly connected
    /// (0 if it started that way); `None` while never observed.
    pub steps_to_strong_connectivity: Option<u64>,
    /// Landmark-bound prunes accumulated over every stability test
    /// (always 0 when the engine's [`crate::LandmarkPolicy`] resolves to
    /// the exact path). Effort counter: never affects the trajectory.
    pub bounds_hit: u64,
    /// Exact deviation rows materialized inside landmark-bounded searches
    /// (always 0 on the exact path, where rows are built eagerly and
    /// counted by [`crate::EngineStats::oracle_rows_computed`] instead).
    pub rows_materialized: u64,
}

/// A best-response walk in progress.
///
/// # Examples
///
/// ```
/// use bbc_core::{Configuration, GameSpec, Scheduler, Walk, WalkOutcome};
///
/// let spec = GameSpec::uniform(6, 1);
/// let mut walk = Walk::new(&spec, Configuration::empty(6));
/// let outcome = walk.run(10_000)?;
/// // From the empty graph, round-robin best response reaches an equilibrium
/// // (§4.3 reports exactly this observation).
/// assert!(matches!(outcome, WalkOutcome::Equilibrium { .. }));
/// # Ok::<(), bbc_core::Error>(())
/// ```
#[derive(Debug)]
pub struct Walk<'a> {
    spec: &'a GameSpec,
    /// The shared shortest-path substrate, threaded through every step; it
    /// owns the authoritative copy of the evolving configuration.
    engine: DistanceEngine<'a>,
    scheduler: Scheduler,
    options: BestResponseOptions,
    stats: WalkStats,
    /// Position in the round-robin order (meaningless for other schedulers).
    pos: usize,
    order: Vec<NodeId>,
    /// Consecutive steps without a move (equilibrium detector for
    /// round-robin/random).
    stable_streak: usize,
    /// OS threads for the per-step oracle BFS fan-out
    /// ([`Walk::prefill_threads`]; 1 = sequential).
    prefill: usize,
    rng: Option<SmallRng>,
    /// Whether the caller asked for cycle detection ([`Walk::detect_cycles`];
    /// on by default). The *effective* state is `history`, reconciled from
    /// this flag and the scheduler after every builder call, so builder-call
    /// order never matters.
    want_cycles: bool,
    history: Option<DetHashMap<(Configuration, usize), u64>>,
    trace: Option<Vec<MoveRecord>>,
    /// Priority state of the engine-aware max-cost-first scheduler; built
    /// lazily on the first max-cost step and updated per move from the
    /// engine's dirty-cost drain. Dropped whenever the scheduler switches
    /// or the membership changes.
    mcf: Option<McfState>,
    /// Use the frozen full-rescan max-cost-first implementation instead of
    /// the priority queue (the regression reference; see
    /// [`Walk::max_cost_first_rescan`]).
    mcf_rescan: bool,
}

/// Priority state for [`Scheduler::MaxCostFirst`]: live nodes keyed by
/// `(u64::MAX − cost, id)` so ascending B-tree order visits maximum cost
/// first with ties broken by lowest id — exactly the frozen rescan's sort.
#[derive(Debug)]
struct McfState {
    queue: BTreeSet<(u64, u32)>,
    /// The cost each node is currently filed under (`None` = not queued).
    filed: Vec<Option<u64>>,
}

impl McfState {
    #[inline]
    fn key(cost: u64, u: NodeId) -> (u64, u32) {
        (u64::MAX - cost, u.index() as u32)
    }
}

impl<'a> Walk<'a> {
    /// Starts a round-robin walk from `config` with cycle detection on and
    /// tracing off.
    pub fn new(spec: &'a GameSpec, config: Configuration) -> Self {
        assert_eq!(
            config.node_count(),
            spec.node_count(),
            "configuration size mismatch"
        );
        Self::from_engine(spec, DistanceEngine::new(spec, config))
    }

    /// [`Walk::new`] on an explicit engine row tier (the differential
    /// suite pins u32 walks against u64 walks with this).
    ///
    /// # Errors
    ///
    /// As [`DistanceEngine::with_tier`].
    pub fn with_tier(
        spec: &'a GameSpec,
        config: Configuration,
        tier: crate::RowTier,
    ) -> crate::Result<Self> {
        assert_eq!(
            config.node_count(),
            spec.node_count(),
            "configuration size mismatch"
        );
        Ok(Self::from_engine(
            spec,
            DistanceEngine::with_tier(spec, config, tier)?,
        ))
    }

    /// The row tier the underlying engine runs on.
    pub fn row_tier(&self) -> crate::RowTier {
        self.engine.row_tier()
    }

    /// Starts a round-robin walk over a partial membership: nodes outside
    /// `live` are departed peers (see [`DistanceEngine::with_membership`]);
    /// every scheduler offers moves to live nodes only.
    ///
    /// # Errors
    ///
    /// As [`DistanceEngine::with_membership`].
    pub fn with_membership(
        spec: &'a GameSpec,
        config: Configuration,
        live: &bbc_graph::BitSet,
    ) -> crate::Result<Self> {
        Ok(Self::from_engine(
            spec,
            DistanceEngine::with_membership(spec, config, live)?,
        ))
    }

    /// The shared constructor body: wraps a ready engine (built once — a
    /// second throwaway build would double walk-construction cost at
    /// overlay scale).
    fn from_engine(spec: &'a GameSpec, engine: DistanceEngine<'a>) -> Self {
        let order: Vec<NodeId> = NodeId::all(spec.node_count()).collect();
        Self {
            spec,
            engine,
            scheduler: Scheduler::RoundRobin,
            options: BestResponseOptions::default(),
            stats: WalkStats::default(),
            pos: 0,
            order,
            stable_streak: 0,
            prefill: 1,
            rng: None,
            want_cycles: true,
            history: Some(DetHashMap::default()),
            trace: None,
            mcf: None,
            mcf_rescan: false,
        }
    }

    /// Replaces the scheduler.
    ///
    /// # Panics
    ///
    /// Panics if a [`Scheduler::RoundRobinOrder`] is not a permutation of all
    /// nodes.
    #[must_use]
    pub fn with_scheduler(mut self, scheduler: Scheduler) -> Self {
        match &scheduler {
            Scheduler::RoundRobinOrder(order) => {
                let mut seen = vec![false; self.spec.node_count()];
                assert_eq!(
                    order.len(),
                    self.spec.node_count(),
                    "order must cover every node"
                );
                for &v in order {
                    assert!(!seen[v.index()], "order repeats {v}");
                    seen[v.index()] = true;
                }
                self.order = order.clone();
            }
            // Plain round-robin always means id order, even after a
            // `RoundRobinOrder` was set earlier on the builder.
            Scheduler::RoundRobin => self.order = NodeId::all(self.spec.node_count()).collect(),
            Scheduler::MaxCostFirst | Scheduler::Random { .. } => {}
        }
        // Builder state is reconciled from scratch on every switch so the
        // final walk depends only on the final scheduler, never on the call
        // order: the RNG exists exactly for `Random`, and a history dropped
        // for `Random` comes back when switching to a deterministic policy.
        self.rng = match scheduler {
            Scheduler::Random { seed } => Some(SmallRng::seed_from_u64(seed)),
            _ => None,
        };
        // Drop any accumulated history: its keys are `(config, pos)` states
        // of the *old* scheduler's dynamics, and matching one of them under
        // the new scheduler would certify a cycle that never happened. (A
        // pre-run builder chain only ever drops empty maps.)
        self.history = None;
        self.scheduler = scheduler;
        self.pos = 0;
        // The max-cost queue belongs to the old scheduler's stepping; it is
        // rebuilt lazily from the engine's dirty-cost drain when needed.
        self.mcf = None;
        // The no-move streak belongs to the old scheduler's test order; with
        // pos back at 0 a carried streak could certify equilibrium after
        // fewer than n fresh tests.
        self.stable_streak = 0;
        self.reconcile_history();
        self
    }

    /// Overrides best-response search options.
    #[must_use]
    pub fn with_options(mut self, options: BestResponseOptions) -> Self {
        self.options = BestResponseOptions {
            stop_at_first_improvement: false,
            ..options
        };
        self
    }

    /// Enables or disables exact-state cycle detection (on by default; the
    /// history grows by one configuration per step).
    ///
    /// The request is remembered independently of the scheduler: asking for
    /// detection and *then* switching schedulers (or the reverse) converges
    /// to the same walk. Detection stays off while the scheduler is
    /// [`Scheduler::Random`] — a revisited configuration does not imply a
    /// loop when moves are drawn randomly — but revives if the walk is
    /// switched back to a deterministic policy before running.
    #[must_use]
    pub fn detect_cycles(mut self, yes: bool) -> Self {
        self.want_cycles = yes;
        self.reconcile_history();
        self
    }

    /// Derives the effective cycle-detection state from the requested flag
    /// and the current scheduler (idempotent; keeps an existing map).
    fn reconcile_history(&mut self) {
        let deterministic = !matches!(self.scheduler, Scheduler::Random { .. });
        if self.want_cycles && deterministic {
            if self.history.is_none() {
                self.history = Some(DetHashMap::default());
            }
        } else {
            self.history = None;
        }
    }

    /// Enables recording of every applied move.
    pub fn record_trace(mut self, yes: bool) -> Self {
        self.trace = yes.then(Vec::new);
        self
    }

    /// Selects the frozen full-rescan implementation of
    /// [`Scheduler::MaxCostFirst`]: recompute every live node's cost and
    /// sort, each step. It is the executable reference the engine-aware
    /// priority-queue scheduler is differentially pinned against (move
    /// sequence and [`WalkStats`] accounting are proven identical); keep it
    /// off outside that comparison — it turns an `O(changed)` step back
    /// into an `O(n log n)` one.
    pub fn max_cost_first_rescan(mut self, yes: bool) -> Self {
        self.mcf_rescan = yes;
        self.mcf = None;
        self
    }

    /// Spreads each step's oracle BFS fan-out (up to `n − 1` deviation-row
    /// traversals per stability test) across `threads` OS threads via
    /// [`DistanceEngine::best_response_prefilled`]. The walk itself —
    /// outcome, configuration, steps, moves — is byte-identical for every
    /// thread count; only wall-clock changes. Values ≤ 1 keep the
    /// sequential path.
    #[must_use]
    pub fn prefill_threads(mut self, threads: usize) -> Self {
        self.prefill = threads.max(1);
        self
    }

    /// Sets the engine's landmark bound policy ([`crate::LandmarkPolicy`]).
    ///
    /// Admissible bounds never change the walk — trajectory, moves, steps,
    /// and final configuration are byte-identical across policies; only the
    /// [`WalkStats::bounds_hit`] / [`WalkStats::rows_materialized`] effort
    /// counters and the engine's traversal counts vary.
    #[must_use]
    pub fn with_landmarks(mut self, policy: crate::LandmarkPolicy) -> Self {
        self.engine.set_landmark_policy(policy);
        self
    }

    /// In-place form of [`Walk::with_landmarks`], for a walk already owned
    /// by a simulation (e.g. [`crate::ChurnSim`]).
    pub fn set_landmark_policy(&mut self, policy: crate::LandmarkPolicy) {
        self.engine.set_landmark_policy(policy);
    }

    /// The game this walk plays.
    pub fn spec(&self) -> &'a GameSpec {
        self.spec
    }

    /// The current configuration.
    pub fn config(&self) -> &Configuration {
        self.engine.config()
    }

    /// Consumes the walk, returning the final configuration.
    pub fn into_config(self) -> Configuration {
        self.engine.into_config()
    }

    /// Statistics so far.
    pub fn stats(&self) -> &WalkStats {
        &self.stats
    }

    /// Cache counters of the underlying [`DistanceEngine`].
    pub fn engine_stats(&self) -> crate::EngineStats {
        self.engine.stats()
    }

    /// Publishes the walk's effort counters (names under `walk/`) and the
    /// underlying engine's (under `engine/`) into a metrics registry,
    /// including the landmark bound hit-rate gauge
    /// (`walk/landmark_bound_hit_rate_permille`: prunes over prunes +
    /// materialized exact rows). Observational only — the registry is
    /// write-only from the walk's point of view, so trajectories and
    /// digests are untouched.
    pub fn publish_metrics(&self, reg: &mut bbc_obs::Registry) {
        reg.set_counter("walk/steps", self.stats.steps);
        reg.set_counter("walk/moves", self.stats.moves);
        reg.set_counter("walk/bounds_hit", self.stats.bounds_hit);
        reg.set_counter("walk/rows_materialized", self.stats.rows_materialized);
        reg.set_gauge(
            "walk/landmark_bound_hit_rate_permille",
            bbc_obs::permille(
                self.stats.bounds_hit,
                self.stats.bounds_hit + self.stats.rows_materialized,
            ),
        );
        self.engine.publish_metrics(reg);
    }

    /// Recorded moves (empty unless [`Walk::record_trace`] was enabled).
    pub fn trace(&self) -> &[MoveRecord] {
        self.trace.as_deref().unwrap_or(&[])
    }

    /// Runs until equilibrium, a detected cycle, or `max_steps`.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::Error::SearchBudgetExceeded`] from the per-node
    /// best-response search.
    pub fn run(&mut self, max_steps: u64) -> Result<WalkOutcome> {
        let n = self.spec.node_count();
        if self.engine.live_count() <= 1 {
            return Ok(WalkOutcome::Equilibrium {
                steps: self.stats.steps,
            });
        }
        self.note_connectivity();
        while self.stats.steps < max_steps {
            // Cycle detection on the pre-step state. (Departed nodes hold
            // empty, immutable strategies, so within one membership epoch —
            // churn events clear the history — the configuration still
            // determines the joint state exactly.)
            if let Some(history) = &mut self.history {
                let key = (self.engine.config().clone(), self.pos);
                if let Some(&first) = history.get(&key) {
                    return Ok(WalkOutcome::Cycle {
                        first_seen_step: first,
                        period: self.stats.steps - first,
                    });
                }
                history.insert(key, self.stats.steps);
            }

            match self.scheduler {
                Scheduler::RoundRobin | Scheduler::RoundRobinOrder(_) => {
                    // Departed members keep their slot in the order but are
                    // skipped without costing a step.
                    let u = loop {
                        let cand = self.order[self.pos];
                        self.pos = (self.pos + 1) % n;
                        if self.engine.is_live(cand) {
                            break cand;
                        }
                    };
                    let moved = self.step_node(u)?;
                    if self.bump_streak(moved, self.engine.live_count()) {
                        return Ok(WalkOutcome::Equilibrium {
                            steps: self.stats.steps,
                        });
                    }
                }
                Scheduler::Random { .. } => {
                    let live_count = self.engine.live_count();
                    let i = self
                        .rng
                        .as_mut()
                        // bbc-lint: allow(panic, the constructor builds an rng whenever the scheduler is Random)
                        .expect("random scheduler has rng")
                        .gen_range(0..live_count);
                    // Under full membership the i-th live node *is* node i;
                    // keep the common case O(1) instead of a bitset scan.
                    let u = if live_count == n {
                        NodeId::new(i)
                    } else {
                        self.engine
                            .live_nodes()
                            .nth(i)
                            // bbc-lint: allow(panic, gen_range drew i below live_count, so the iterator has an i-th element)
                            .expect("index drawn below live count")
                    };
                    let moved = self.step_node(u)?;
                    // A random walk can dawdle; confirm apparent convergence
                    // with a full exact scan once the streak is long enough.
                    if self.bump_streak(moved, 2 * live_count) && self.exact_scan_stable()? {
                        return Ok(WalkOutcome::Equilibrium {
                            steps: self.stats.steps,
                        });
                    }
                }
                Scheduler::MaxCostFirst => {
                    let moved = if self.mcf_rescan {
                        self.step_max_cost_first_rescan()?
                    } else {
                        self.step_max_cost_first()?
                    };
                    if !moved {
                        return Ok(WalkOutcome::Equilibrium {
                            steps: self.stats.steps,
                        });
                    }
                }
            }
        }
        Ok(WalkOutcome::StepLimit {
            steps: self.stats.steps,
        })
    }

    /// One stability test through the engine, honouring the walk's prefill
    /// policy (the single call site shared by every scheduler).
    fn test_node(&mut self, u: NodeId) -> Result<crate::BestResponseOutcome> {
        let out = self
            .engine
            .best_response_prefilled(u, &self.options, self.prefill)?;
        self.stats.bounds_hit += out.bounds_hit;
        self.stats.rows_materialized += out.rows_materialized;
        Ok(out)
    }

    /// Offers `u` a best-response step; returns whether it moved.
    fn step_node(&mut self, u: NodeId) -> Result<bool> {
        let out = self.test_node(u)?;
        self.stats.steps += 1;
        if !out.improves() {
            return Ok(false);
        }
        self.apply_move(u, out.best_strategy, out.current_cost, out.best_cost);
        Ok(true)
    }

    /// One engine-aware max-cost-first step; returns `false` when every
    /// live node is stable (equilibrium).
    ///
    /// The scan probes nodes in descending cached-cost order (ties by
    /// lowest id) straight out of a priority queue that is updated from the
    /// engine's dirty-cost drain — `O(changed·log n)` bookkeeping per
    /// applied move plus `O(log n)` per probe, instead of the frozen
    /// rescan's recompute-and-sort of every node per step. The probe
    /// sequence, applied moves, and [`WalkStats`] step accounting are
    /// identical to [`Walk::max_cost_first_rescan`] (pinned by the
    /// differential test): a stability test never changes any cost, so the
    /// queue order *is* the rescan's sort order.
    fn step_max_cost_first(&mut self) -> Result<bool> {
        let n = self.spec.node_count();
        let dirty = self.engine.take_dirty_costs();
        if let Some(state) = &mut self.mcf {
            // O(changed): re-file exactly the nodes whose cached cost the
            // last applied move (or churn event) dropped.
            for u in dirty {
                if let Some(old) = state.filed[u.index()].take() {
                    state.queue.remove(&McfState::key(old, u));
                }
                if self.engine.is_live(u) {
                    let cost = self.engine.node_cost(u);
                    state.queue.insert(McfState::key(cost, u));
                    state.filed[u.index()] = Some(cost);
                }
            }
        } else {
            // Fresh queue (the pending dirty set was just absorbed): file
            // every live node under its current cost.
            let mut state = McfState {
                queue: BTreeSet::new(),
                filed: vec![None; n],
            };
            for u in NodeId::all(n) {
                if self.engine.is_live(u) {
                    let cost = self.engine.node_cost(u);
                    state.queue.insert(McfState::key(cost, u));
                    state.filed[u.index()] = Some(cost);
                }
            }
            self.mcf = Some(state);
        }

        // Probe in queue order via a cursor (the queue is not mutated by
        // stability tests, so the cursor walks a stable order).
        let mut cursor: Option<(u64, u32)> = None;
        loop {
            let next = {
                // bbc-lint: allow(panic, the match arm above constructed self.mcf before looping)
                let state = self.mcf.as_ref().expect("built above");
                match cursor {
                    None => state.queue.first().copied(),
                    Some(k) => state
                        .queue
                        .range((Bound::Excluded(k), Bound::Unbounded))
                        .next()
                        .copied(),
                }
            };
            let Some(key) = next else {
                // Full scan found no mover: equilibrium (every test counted).
                return Ok(false);
            };
            cursor = Some(key);
            let u = NodeId::new(key.1 as usize);
            let out = self.test_node(u)?;
            // Every stability test counts as a step (the `WalkStats::steps`
            // contract), including the non-movers probed before the mover is
            // found — otherwise max-cost-first walks would report
            // incomparably fewer steps than round-robin for the same number
            // of best-response evaluations.
            self.stats.steps += 1;
            if out.improves() {
                self.apply_move(u, out.best_strategy, out.current_cost, out.best_cost);
                return Ok(true);
            }
        }
    }

    /// The frozen pre-queue max-cost-first step: recompute every live
    /// node's cost, sort, probe in order. Kept as the executable reference
    /// for the scheduler differential test ([`Walk::max_cost_first_rescan`]).
    fn step_max_cost_first_rescan(&mut self) -> Result<bool> {
        let n = self.spec.node_count();
        let mut by_cost: Vec<(u64, NodeId)> = {
            let costs = self.engine.node_costs();
            NodeId::all(n)
                .filter(|&u| self.engine.is_live(u))
                .map(|u| (costs[u.index()], u))
                .collect()
        };
        // Max cost first; ties by lowest id.
        by_cost.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        for (_, u) in by_cost {
            let out = self.test_node(u)?;
            self.stats.steps += 1;
            if out.improves() {
                self.apply_move(u, out.best_strategy, out.current_cost, out.best_cost);
                return Ok(true);
            }
        }
        // Full scan found no mover: equilibrium (every test already counted).
        Ok(false)
    }

    fn apply_move(&mut self, u: NodeId, new: Vec<NodeId>, old_cost: u64, new_cost: u64) {
        let old = self.engine.config().strategy(u).to_vec();
        if let Some(trace) = &mut self.trace {
            trace.push(MoveRecord {
                step: self.stats.steps - 1,
                node: u,
                old_strategy: old,
                new_strategy: new.clone(),
                old_cost,
                new_cost,
            });
        }
        self.engine
            .apply_strategy(u, new)
            // bbc-lint: allow(panic, the best response came from the same spec and engine that validate it)
            .expect("best response produced an invalid strategy");
        self.stats.moves += 1;
        self.note_connectivity();
    }

    /// Updates the no-move streak; returns `true` when it certifies
    /// equilibrium for streak target `target`.
    fn bump_streak(&mut self, moved: bool, target: usize) -> bool {
        if moved {
            self.stable_streak = 0;
            false
        } else {
            self.stable_streak += 1;
            self.stable_streak >= target
        }
    }

    /// Full-search stability scan using the walk's own options, so the scan
    /// reads and refills the same outcome memos the walk's steps use (a
    /// first-improvement checker would evict every default-options memo on
    /// each failed confirmation).
    fn exact_scan_stable(&mut self) -> Result<bool> {
        for u in NodeId::all(self.spec.node_count()) {
            if !self.engine.is_live(u) {
                continue;
            }
            if self.test_node(u)?.improves() {
                return Ok(false);
            }
        }
        Ok(true)
    }

    fn note_connectivity(&mut self) {
        if self.stats.steps_to_strong_connectivity.is_none() && self.engine.is_strongly_connected()
        {
            self.stats.steps_to_strong_connectivity = Some(self.stats.steps);
        }
    }

    // ----- churn events ----------------------------------------------

    /// Departs node `u` mid-walk ([`DistanceEngine::remove_node`]) and
    /// resets the scheduler state the event invalidates: the no-move
    /// streak, the round-robin position, the cycle-detection history (its
    /// keys describe the old membership's dynamics), and the max-cost
    /// queue (rebuilt from the engine's dirty drain on the next step).
    ///
    /// # Errors
    ///
    /// As [`DistanceEngine::remove_node`]; no state changes on error.
    pub fn remove_node(&mut self, u: NodeId) -> Result<()> {
        self.engine.remove_node(u)?;
        self.after_churn_event();
        Ok(())
    }

    /// (Re)admits node `u` with the given strategy mid-walk
    /// ([`DistanceEngine::add_node`]); scheduler state resets as in
    /// [`Walk::remove_node`].
    ///
    /// # Errors
    ///
    /// As [`DistanceEngine::add_node`]; no state changes on error.
    pub fn add_node(&mut self, u: NodeId, targets: Vec<NodeId>) -> Result<()> {
        self.engine.add_node(u, targets)?;
        self.after_churn_event();
        Ok(())
    }

    /// Forcibly rewires a live node — a *shock* (operator intervention,
    /// fault, or adversarial tamper), not a best response: it costs no
    /// step, counts no move, and resets the same scheduler state as a
    /// membership event (the walk is effectively restarted from the shocked
    /// configuration).
    ///
    /// # Errors
    ///
    /// As [`DistanceEngine::apply_strategy`]; no state changes on error.
    pub fn shock_node(&mut self, u: NodeId, targets: Vec<NodeId>) -> Result<()> {
        self.engine.apply_strategy(u, targets)?;
        self.after_churn_event();
        Ok(())
    }

    fn after_churn_event(&mut self) {
        self.stable_streak = 0;
        self.pos = 0;
        if let Some(history) = &mut self.history {
            history.clear();
        }
        self.mcf = None;
        self.note_connectivity();
    }

    // ----- service hooks ---------------------------------------------

    /// Resets the per-phase scheduler state — the round-robin cursor, the
    /// no-move streak, the cycle-detection history, and the max-cost queue
    /// — exactly as a churn event does, without touching the engine.
    ///
    /// After a reset the next [`Walk::run`] is a pure function of
    /// `(configuration, membership, scheduler)`: this is the hook the
    /// `bbc-serve` daemon uses to make every best-response round
    /// snapshot-compactable (a service restored from
    /// `(configuration, membership)` alone replays identical phases, with
    /// no hidden cursor state to capture). Accumulated [`WalkStats`] are
    /// kept — they are observability counters, not trajectory state.
    pub fn reset_phase(&mut self) {
        self.after_churn_event();
    }

    /// Compacts the engine's arenas to the canonical layout
    /// ([`DistanceEngine::canonicalize`]) and resets scheduler state like a
    /// churn event. After this, [`Walk::state_digest`] equals that of a
    /// fresh [`Walk::with_membership`] over the current configuration and
    /// membership — the invariant a snapshot's certified digest rests on.
    pub fn canonicalize(&mut self) {
        self.engine.canonicalize();
        self.after_churn_event();
    }

    /// Best-response *advice* for `u`: runs the engine's stability test —
    /// honouring the walk's search options, prefill policy, and landmark
    /// bounds — without applying the move, counting a step, or touching
    /// any scheduler state.
    ///
    /// The outcome's effort counters ([`crate::BestResponseOutcome::bounds_hit`],
    /// [`crate::BestResponseOutcome::rows_materialized`]) accumulate into
    /// [`WalkStats`] like every other stability test. Advice warms the
    /// engine's caches but never changes observable state: the
    /// [`Walk::state_digest`] before and after is identical.
    ///
    /// # Errors
    ///
    /// [`crate::Error::NodeOutOfBounds`] for ids outside the game;
    /// [`crate::Error::NodeNotLive`] when `u` has departed;
    /// [`crate::Error::SearchBudgetExceeded`] from the search itself.
    pub fn advise(&mut self, u: NodeId) -> Result<crate::BestResponseOutcome> {
        self.check_queryable(u)?;
        self.test_node(u)
    }

    /// Cost of live node `u` under the current configuration (cached by
    /// the engine).
    ///
    /// # Errors
    ///
    /// [`crate::Error::NodeOutOfBounds`] for ids outside the game;
    /// [`crate::Error::NodeNotLive`] when `u` has departed (a departed
    /// node owes no distances; the engine would report 0, which a service
    /// client could mistake for a real cost).
    pub fn node_cost(&mut self, u: NodeId) -> Result<u64> {
        self.check_queryable(u)?;
        Ok(self.engine.node_cost(u))
    }

    /// Per-node query guard, in the same error order as the churn ops:
    /// out-of-range ids are [`crate::Error::NodeOutOfBounds`], in-range
    /// dead ones [`crate::Error::NodeNotLive`].
    fn check_queryable(&self, u: NodeId) -> Result<()> {
        let n = self.spec.node_count();
        if u.index() >= n {
            return Err(crate::Error::NodeOutOfBounds { node: u, n });
        }
        if !self.engine.is_live(u) {
            return Err(crate::Error::NodeNotLive { node: u });
        }
        Ok(())
    }

    /// The live members in ascending id order.
    pub fn live_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.engine.live_nodes()
    }

    /// Number of live members.
    pub fn live_count(&self) -> usize {
        self.engine.live_count()
    }

    /// `true` iff `u` is currently a live member.
    pub fn is_live(&self, u: NodeId) -> bool {
        self.engine.is_live(u)
    }

    /// Social cost of the current configuration over the live membership.
    pub fn social_cost(&mut self) -> u64 {
        self.engine.social_cost()
    }

    /// Disconnection-penalty exposure: ordered live pairs with no path
    /// (see [`DistanceEngine::disconnected_live_pairs`]).
    pub fn disconnected_live_pairs(&mut self) -> u64 {
        self.engine.disconnected_live_pairs()
    }

    /// The engine's state digest ([`DistanceEngine::state_digest`]):
    /// membership + strategies + physical CSR state.
    pub fn state_digest(&self) -> u64 {
        self.engine.state_digest()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StabilityChecker;

    fn v(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn round_robin_from_empty_reaches_equilibrium() {
        for n in [3usize, 5, 7] {
            let spec = GameSpec::uniform(n, 1);
            let mut walk = Walk::new(&spec, Configuration::empty(n));
            let outcome = walk.run(100_000).unwrap();
            assert!(
                matches!(outcome, WalkOutcome::Equilibrium { .. }),
                "n={n}: {outcome:?}"
            );
            assert!(StabilityChecker::new(&spec)
                .is_stable(walk.config())
                .unwrap());
        }
    }

    #[test]
    fn publishing_metrics_is_observational_only() {
        let n = 8;
        let spec = GameSpec::uniform(n, 2);
        let mut walk = Walk::new(&spec, Configuration::random_sparse(&spec, 5, 1));
        let _ = walk.run(500).unwrap();
        let digest = walk.state_digest();
        let mut reg = bbc_obs::Registry::new();
        walk.publish_metrics(&mut reg);
        let first = reg.to_json();
        assert_eq!(walk.state_digest(), digest, "publishing must not mutate");
        // Publishing is idempotent on a quiescent walk, and the walk
        // continues exactly as if nothing had been read.
        walk.publish_metrics(&mut reg);
        assert_eq!(reg.to_json(), first);
        assert_eq!(reg.counter("walk/steps"), Some(walk.stats().steps));
        let _ = walk.run(1_000).unwrap();
        let mut untouched = Walk::new(&spec, Configuration::random_sparse(&spec, 5, 1));
        let _ = untouched.run(500).unwrap();
        let _ = untouched.run(1_000).unwrap();
        assert_eq!(
            walk.state_digest(),
            untouched.state_digest(),
            "a metrics read must not fork the trajectory"
        );
    }

    #[test]
    fn equilibrium_start_terminates_in_one_round() {
        let n = 5;
        let spec = GameSpec::uniform(n, 1);
        let ring =
            Configuration::from_strategies(&spec, (0..n).map(|i| vec![v((i + 1) % n)]).collect())
                .unwrap();
        let mut walk = Walk::new(&spec, ring.clone());
        let outcome = walk.run(1000).unwrap();
        assert_eq!(outcome, WalkOutcome::Equilibrium { steps: n as u64 });
        assert_eq!(walk.config(), &ring, "nobody should have moved");
        assert_eq!(walk.stats().moves, 0);
    }

    #[test]
    fn strong_connectivity_reached_within_n_squared_steps() {
        // Theorem 6: at most n² steps to strong connectivity (round-robin).
        for seed in 0..5 {
            let n = 12;
            let spec = GameSpec::uniform(n, 2);
            let start = Configuration::random_sparse(&spec, seed, 1);
            let mut walk = Walk::new(&spec, start).detect_cycles(false);
            let _ = walk.run((n * n) as u64 + 10).unwrap();
            let sc = walk.stats().steps_to_strong_connectivity;
            assert!(sc.is_some(), "seed {seed}: never strongly connected");
            assert!(sc.unwrap() <= (n * n) as u64, "seed {seed}: took {sc:?}");
        }
    }

    #[test]
    fn reach_never_decreases_along_walk() {
        // Lemma 9's invariant, checked on a traced walk.
        let n = 10;
        let spec = GameSpec::uniform(n, 1);
        let start = Configuration::random_sparse(&spec, 77, 1);
        let mut walk = Walk::new(&spec, start.clone()).record_trace(true);
        let _ = walk.run(2_000).unwrap();

        // Replay moves, watching the mover's reach.
        let mut cfg = start;
        for mv in walk.trace() {
            let before = bbc_graph::reach::reach_of(&cfg.to_graph(&spec), mv.node.index());
            cfg.set_strategy(&spec, mv.node, mv.new_strategy.clone())
                .unwrap();
            let after = bbc_graph::reach::reach_of(&cfg.to_graph(&spec), mv.node.index());
            assert!(after >= before, "move at step {} decreased reach", mv.step);
        }
        assert_eq!(
            &cfg,
            walk.config(),
            "trace replay reproduces the final configuration"
        );
    }

    #[test]
    fn max_cost_first_reaches_equilibrium_from_empty() {
        let spec = GameSpec::uniform(6, 1);
        let mut walk =
            Walk::new(&spec, Configuration::empty(6)).with_scheduler(Scheduler::MaxCostFirst);
        let outcome = walk.run(10_000).unwrap();
        assert!(matches!(outcome, WalkOutcome::Equilibrium { .. }));
        assert!(StabilityChecker::new(&spec)
            .is_stable(walk.config())
            .unwrap());
    }

    #[test]
    fn random_scheduler_is_reproducible_and_converges() {
        let spec = GameSpec::uniform(6, 1);
        let run = |seed| {
            let mut walk = Walk::new(&spec, Configuration::empty(6))
                .with_scheduler(Scheduler::Random { seed });
            let outcome = walk.run(100_000).unwrap();
            (outcome, walk.into_config())
        };
        let (o1, c1) = run(5);
        let (o2, c2) = run(5);
        assert_eq!(o1, o2);
        assert_eq!(c1, c2);
        assert!(matches!(o1, WalkOutcome::Equilibrium { .. }));
        assert!(StabilityChecker::new(&spec).is_stable(&c1).unwrap());
    }

    #[test]
    fn explicit_order_is_respected() {
        let n = 4;
        let spec = GameSpec::uniform(n, 1);
        let order = vec![v(3), v(2), v(1), v(0)];
        let mut walk = Walk::new(&spec, Configuration::empty(n))
            .with_scheduler(Scheduler::RoundRobinOrder(order))
            .record_trace(true);
        let _ = walk.run(1000).unwrap();
        assert_eq!(
            walk.trace()[0].node,
            v(3),
            "first mover follows the explicit order"
        );
    }

    #[test]
    #[should_panic(expected = "order repeats")]
    fn duplicate_order_rejected() {
        let spec = GameSpec::uniform(3, 1);
        let _ = Walk::new(&spec, Configuration::empty(3))
            .with_scheduler(Scheduler::RoundRobinOrder(vec![v(0), v(0), v(1)]));
    }

    #[test]
    fn max_cost_first_counts_every_stability_test() {
        // Regression: from an equilibrium start, the single max-cost-first
        // scan probes all n nodes and must count all n stability tests —
        // the `WalkStats::steps` contract — not just one for the scan.
        let n = 5;
        let spec = GameSpec::uniform(n, 1);
        let ring =
            Configuration::from_strategies(&spec, (0..n).map(|i| vec![v((i + 1) % n)]).collect())
                .unwrap();
        let mut walk = Walk::new(&spec, ring.clone()).with_scheduler(Scheduler::MaxCostFirst);
        let outcome = walk.run(1000).unwrap();
        // Same accounting as the round-robin walk over the same start.
        assert_eq!(outcome, WalkOutcome::Equilibrium { steps: n as u64 });
        assert_eq!(walk.stats().moves, 0);
    }

    #[test]
    fn max_cost_first_move_records_use_step_indices() {
        // The MoveRecord.step of a max-cost-first move is the index of the
        // stability test that became the move, consistent with `step_node`.
        let spec = GameSpec::uniform(6, 1);
        let mut walk = Walk::new(&spec, Configuration::empty(6))
            .with_scheduler(Scheduler::MaxCostFirst)
            .record_trace(true);
        let _ = walk.run(10_000).unwrap();
        let steps = walk.stats().steps;
        let mut last = None;
        for mv in walk.trace() {
            assert!(mv.step < steps, "move step within the counted range");
            if let Some(prev) = last {
                assert!(mv.step > prev, "move steps strictly increase");
            }
            last = Some(mv.step);
        }
    }

    #[test]
    fn builder_calls_converge_regardless_of_order() {
        let spec = GameSpec::uniform(6, 2);

        // detect_cycles(true) then Random: detection off (non-deterministic).
        let w = Walk::new(&spec, Configuration::empty(6))
            .detect_cycles(true)
            .with_scheduler(Scheduler::Random { seed: 3 });
        assert!(w.history.is_none());
        assert!(w.rng.is_some());

        // Random then back to RoundRobin: the previously-requested history
        // revives and the stale RNG is dropped.
        let w = Walk::new(&spec, Configuration::empty(6))
            .detect_cycles(true)
            .with_scheduler(Scheduler::Random { seed: 3 })
            .with_scheduler(Scheduler::RoundRobin);
        assert!(
            w.history.is_some(),
            "cycle detection must survive a scheduler detour through Random"
        );
        assert!(w.rng.is_none(), "no stale RNG on a deterministic walk");

        // Opposite call order reaches the same state.
        let w = Walk::new(&spec, Configuration::empty(6))
            .with_scheduler(Scheduler::Random { seed: 3 })
            .with_scheduler(Scheduler::RoundRobin)
            .detect_cycles(true);
        assert!(w.history.is_some());
        assert!(w.rng.is_none());

        // Explicit opt-out is respected in any order.
        let w = Walk::new(&spec, Configuration::empty(6))
            .detect_cycles(false)
            .with_scheduler(Scheduler::MaxCostFirst);
        assert!(w.history.is_none());

        // A custom order is forgotten when plain RoundRobin is re-selected.
        let w = Walk::new(&spec, Configuration::empty(6))
            .with_scheduler(Scheduler::RoundRobinOrder(vec![
                v(5),
                v(4),
                v(3),
                v(2),
                v(1),
                v(0),
            ]))
            .with_scheduler(Scheduler::RoundRobin);
        assert_eq!(w.order, NodeId::all(6).collect::<Vec<_>>());
    }

    #[test]
    fn scheduler_switch_mid_run_resets_the_stability_streak() {
        // A walk cut off at a step limit can carry a partial no-move
        // streak; re-running after a scheduler switch must not let that
        // stale streak certify equilibrium before n fresh tests.
        for seed in 0..10 {
            let spec = GameSpec::uniform(5, 1);
            let mut walk = Walk::new(&spec, Configuration::random(&spec, seed));
            let _ = walk.run(3).unwrap();
            let mut walk = walk.with_scheduler(Scheduler::RoundRobin);
            if let WalkOutcome::Equilibrium { .. } = walk.run(100_000).unwrap() {
                assert!(
                    StabilityChecker::new(&spec)
                        .is_stable(walk.config())
                        .unwrap(),
                    "seed {seed}: certified equilibrium must actually be stable"
                );
            }
        }
    }

    #[test]
    fn scheduler_switch_mid_run_discards_stale_history() {
        // States recorded under one scheduler's dynamics must not be able
        // to certify a cycle under another: MaxCostFirst keeps pos = 0, so
        // without the reset a later round-robin run could match an MCF-era
        // `(config, 0)` key and report a loop that never happened.
        let spec = GameSpec::uniform(7, 2);
        let mut walk = Walk::new(&spec, Configuration::random(&spec, 3))
            .with_scheduler(Scheduler::MaxCostFirst);
        let _ = walk.run(20).unwrap();
        assert!(!walk.history.as_ref().unwrap().is_empty());
        let walk = walk.with_scheduler(Scheduler::RoundRobin);
        assert!(
            walk.history.as_ref().unwrap().is_empty(),
            "switching schedulers must not carry another dynamics' states"
        );
    }

    #[test]
    fn cycle_detection_revived_after_random_detour_finds_cycles() {
        // End-to-end: a walk that provably cycles under round-robin must
        // still report the cycle when the builder detoured through Random.
        let spec = GameSpec::uniform(7, 2);
        let find_cycling_seed = || {
            for seed in 0..400 {
                let mut walk = Walk::new(&spec, Configuration::random(&spec, seed));
                if matches!(walk.run(50_000), Ok(WalkOutcome::Cycle { .. })) {
                    return Some(seed);
                }
            }
            None
        };
        let seed = find_cycling_seed().expect("(7,2) cycles within 400 seeds");
        let mut detoured = Walk::new(&spec, Configuration::random(&spec, seed))
            .with_scheduler(Scheduler::Random { seed: 1 })
            .with_scheduler(Scheduler::RoundRobin);
        let mut direct = Walk::new(&spec, Configuration::random(&spec, seed));
        assert_eq!(
            detoured.run(50_000).unwrap(),
            direct.run(50_000).unwrap(),
            "detoured builder must replay the direct walk exactly"
        );
    }

    #[test]
    fn max_cost_first_queue_replays_the_frozen_rescan_exactly() {
        // The engine-aware priority-queue scheduler must reproduce the
        // frozen recompute-and-sort implementation *exactly*: same probe
        // count (steps), same movers in the same order, same endpoint —
        // from random starts, from an equilibrium start, and with the
        // search budget exercised by several (n, k) shapes.
        for (n, k, seeds) in [(6usize, 1u64, 0..6u64), (8, 2, 0..4), (10, 2, 0..3)] {
            let spec = GameSpec::uniform(n, k);
            for seed in seeds {
                let start = Configuration::random(&spec, seed);
                let run = |rescan: bool| {
                    let mut walk = Walk::new(&spec, start.clone())
                        .with_scheduler(Scheduler::MaxCostFirst)
                        .max_cost_first_rescan(rescan)
                        .record_trace(true);
                    let outcome = walk.run(4_000).unwrap();
                    (
                        outcome,
                        walk.stats().clone(),
                        walk.trace().to_vec(),
                        walk.into_config(),
                    )
                };
                assert_eq!(run(false), run(true), "n={n} k={k} seed={seed}");
            }
        }
    }

    #[test]
    fn max_cost_first_queue_counts_equilibrium_scan_steps() {
        // From an equilibrium start the single scan probes all n nodes and
        // counts all n stability tests — the WalkStats contract — on the
        // queue path just like on the frozen rescan.
        let n = 5;
        let spec = GameSpec::uniform(n, 1);
        let ring =
            Configuration::from_strategies(&spec, (0..n).map(|i| vec![v((i + 1) % n)]).collect())
                .unwrap();
        let mut walk = Walk::new(&spec, ring).with_scheduler(Scheduler::MaxCostFirst);
        let outcome = walk.run(1000).unwrap();
        assert_eq!(outcome, WalkOutcome::Equilibrium { steps: n as u64 });
        assert_eq!(walk.stats().moves, 0);
    }

    #[test]
    fn walks_skip_departed_members_on_every_scheduler() {
        for scheduler in [
            Scheduler::RoundRobin,
            Scheduler::MaxCostFirst,
            Scheduler::Random { seed: 3 },
        ] {
            let spec = GameSpec::uniform(8, 2);
            let mut walk = Walk::new(&spec, Configuration::random(&spec, 2))
                .with_scheduler(scheduler.clone())
                .record_trace(true);
            walk.remove_node(v(3)).unwrap();
            walk.remove_node(v(6)).unwrap();
            let outcome = walk.run(100_000).unwrap();
            assert!(
                matches!(
                    outcome,
                    WalkOutcome::Equilibrium { .. } | WalkOutcome::Cycle { .. }
                ),
                "{scheduler:?}: {outcome:?}"
            );
            for mv in walk.trace() {
                assert_ne!(mv.node, v(3), "{scheduler:?}: departed node moved");
                assert_ne!(mv.node, v(6), "{scheduler:?}: departed node moved");
            }
            if matches!(outcome, WalkOutcome::Equilibrium { .. }) {
                // Every live node really is stable in the masked game.
                for u in NodeId::all(8) {
                    if walk.is_live(u) {
                        let out = walk
                            .engine
                            .best_response(u, &BestResponseOptions::default());
                        assert!(!out.unwrap().improves(), "{scheduler:?}: {u} unstable");
                    }
                }
            }
        }
    }

    #[test]
    fn churned_walk_matches_fresh_membership_walk() {
        // A walk that churns and re-equilibrates must land in exactly the
        // state a fresh walk started from the post-churn snapshot lands in.
        let spec = GameSpec::uniform(9, 2);
        let mut walk = Walk::new(&spec, Configuration::random(&spec, 5)).detect_cycles(false);
        let _ = walk.run(200).unwrap();
        walk.remove_node(v(2)).unwrap();
        walk.remove_node(v(7)).unwrap();
        walk.add_node(v(2), vec![v(0), v(4)]).unwrap();
        let snapshot = walk.config().clone();
        let live = walk.engine.live_set().clone();
        let pre_churn_steps = walk.stats().steps;
        let target = pre_churn_steps + 50_000;
        let outcome = walk.run(target).unwrap();

        let mut fresh = Walk::with_membership(&spec, snapshot, &live)
            .unwrap()
            .detect_cycles(false);
        let fresh_outcome = fresh.run(50_000).unwrap();
        match (outcome, fresh_outcome) {
            (
                WalkOutcome::Equilibrium { steps },
                WalkOutcome::Equilibrium { steps: fresh_steps },
            ) => {
                assert_eq!(
                    steps - pre_churn_steps,
                    fresh_steps,
                    "same number of post-churn steps"
                );
            }
            (a, b) => panic!("outcomes diverged: {a:?} vs {b:?}"),
        }
        assert_eq!(walk.config(), fresh.config());
        assert_eq!(walk.state_digest(), fresh.state_digest());
    }

    #[test]
    fn reset_phase_makes_runs_pure_in_config_and_membership() {
        // The bbc-serve snapshot contract: after reset_phase(), a run is a
        // pure function of (configuration, membership, scheduler), so a
        // walk restored from those alone replays the identical phase even
        // when the original was interrupted mid-round.
        let spec = GameSpec::uniform(7, 2);
        let mut walk = Walk::new(&spec, Configuration::random(&spec, 11));
        let _ = walk.run(3).unwrap(); // park the cursor mid-round
        walk.remove_node(v(5)).unwrap();
        let mid = walk.config().clone();
        let live = walk.engine.live_set().clone();
        walk.reset_phase();
        let steps_before = walk.stats().steps;
        let target = steps_before + 50_000;
        let outcome = walk.run(target).unwrap();

        let mut restored = Walk::with_membership(&spec, mid, &live).unwrap();
        let restored_outcome = restored.run(50_000).unwrap();
        match (outcome, restored_outcome) {
            (WalkOutcome::Equilibrium { steps }, WalkOutcome::Equilibrium { steps: r }) => {
                assert_eq!(steps - steps_before, r, "same post-reset step count");
            }
            (a, b) => panic!("outcomes diverged: {a:?} vs {b:?}"),
        }
        assert_eq!(walk.config(), restored.config());
        assert_eq!(walk.state_digest(), restored.state_digest());
    }

    #[test]
    fn canonicalize_makes_the_digest_rebuildable() {
        // The snapshot contract: state_digest hashes the physical CSR
        // arenas, and strategy patches (best-response moves, shocks) leave
        // them history-dependent. canonicalize() must land the walk on the
        // exact digest a fresh with_membership build of the same semantic
        // state produces — that is what lets a snapshot certify a digest a
        // restore can verify.
        let spec = GameSpec::uniform(9, 2);
        let mut walk = Walk::new(&spec, Configuration::empty(9));
        let _ = walk.run(50_000).unwrap(); // settle: patches on a fresh arena
        walk.remove_node(v(3)).unwrap(); // canonical again here
        let target = walk.stats().steps + 50_000;
        let _ = walk.run(target).unwrap(); // re-settle: patches on top
        walk.shock_node(v(0), vec![v(1)]).unwrap();

        let rebuilt =
            Walk::with_membership(&spec, walk.config().clone(), walk.engine.live_set()).unwrap();
        walk.canonicalize();
        assert_eq!(
            walk.state_digest(),
            rebuilt.state_digest(),
            "canonicalized digest equals the fresh-rebuild digest"
        );
        assert_eq!(walk.config(), rebuilt.config(), "semantic state untouched");
    }

    #[test]
    fn advise_observes_without_mutating() {
        let spec = GameSpec::uniform(5, 1);
        let mut walk = Walk::new(&spec, Configuration::empty(5));
        let before = walk.state_digest();
        let advice = walk.advise(v(0)).unwrap();
        assert!(advice.improves(), "empty start: any link beats isolation");
        assert_eq!(walk.state_digest(), before, "advice never mutates state");
        assert_eq!(walk.stats().steps, 0, "advice costs no walk step");
        assert_eq!(walk.config(), &Configuration::empty(5));
    }

    #[test]
    fn service_queries_guard_liveness() {
        let spec = GameSpec::uniform(6, 1);
        let mut walk = Walk::new(&spec, Configuration::empty(6));
        walk.remove_node(v(2)).unwrap();
        assert!(matches!(
            walk.advise(v(2)),
            Err(crate::Error::NodeNotLive { node }) if node == v(2)
        ));
        assert!(matches!(
            walk.node_cost(v(2)),
            Err(crate::Error::NodeNotLive { node }) if node == v(2)
        ));
        assert!(walk.node_cost(v(0)).unwrap() > 0, "isolated node pays M");
        assert_eq!(
            walk.live_nodes().collect::<Vec<_>>(),
            vec![v(0), v(1), v(3), v(4), v(5)]
        );
    }

    #[test]
    fn shock_restarts_equilibrium_certification() {
        let spec = GameSpec::uniform(6, 1);
        let mut walk = Walk::new(&spec, Configuration::empty(6));
        let _ = walk.run(100_000).unwrap();
        let settled = walk.config().clone();
        // Shock node 0 onto a (probably) suboptimal link; the walk must
        // re-test everyone before re-certifying equilibrium.
        walk.shock_node(v(0), vec![v(3)]).unwrap();
        let target = walk.stats().steps + 100_000;
        let outcome = walk.run(target).unwrap();
        assert!(matches!(outcome, WalkOutcome::Equilibrium { .. }));
        assert!(crate::StabilityChecker::new(&spec)
            .is_stable(walk.config())
            .unwrap());
        let _ = settled;
    }

    #[test]
    fn prefill_threads_never_change_the_walk() {
        // The parallel oracle fan-out is an execution policy, not a
        // semantic one: outcome, endpoint, steps and moves must be
        // byte-identical for every thread count, on every scheduler.
        for scheduler in [
            Scheduler::RoundRobin,
            Scheduler::MaxCostFirst,
            Scheduler::Random { seed: 7 },
        ] {
            let spec = GameSpec::uniform(10, 2);
            let start = Configuration::random(&spec, 42);
            let run = |threads: usize| {
                let mut walk = Walk::new(&spec, start.clone())
                    .with_scheduler(scheduler.clone())
                    .prefill_threads(threads);
                let outcome = walk.run(2_000).unwrap();
                (outcome, walk.stats().clone(), walk.into_config())
            };
            let base = run(1);
            for threads in [2usize, 4] {
                assert_eq!(run(threads), base, "{scheduler:?} threads={threads}");
            }
        }
    }

    #[test]
    fn step_limit_reported() {
        let spec = GameSpec::uniform(8, 2);
        let mut walk = Walk::new(&spec, Configuration::empty(8));
        let outcome = walk.run(3).unwrap();
        assert_eq!(outcome, WalkOutcome::StepLimit { steps: 3 });
    }

    #[test]
    fn trace_records_costs_consistently() {
        let spec = GameSpec::uniform(6, 2);
        let mut walk = Walk::new(&spec, Configuration::empty(6)).record_trace(true);
        let _ = walk.run(10_000).unwrap();
        for mv in walk.trace() {
            assert!(mv.new_cost < mv.old_cost, "recorded moves strictly improve");
        }
        assert_eq!(walk.stats().moves as usize, walk.trace().len());
    }
}

//! Error types for game construction and analysis.

use std::fmt;

use crate::NodeId;

/// Errors produced by the BBC game layer.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A game was declared with zero nodes.
    EmptyGame,
    /// A strategy referenced a node outside `0..n`.
    NodeOutOfBounds {
        /// The offending node.
        node: NodeId,
        /// The game size.
        n: usize,
    },
    /// A strategy contained a self-link, which the model forbids (a self-link
    /// never shortens any distance and wastes budget).
    SelfLink {
        /// The node attempting to link to itself.
        node: NodeId,
    },
    /// A strategy listed the same target twice.
    DuplicateTarget {
        /// The buying node.
        node: NodeId,
        /// The repeated target.
        target: NodeId,
    },
    /// A strategy's total link cost exceeds the node's budget.
    BudgetExceeded {
        /// The overspending node.
        node: NodeId,
        /// Total cost of the attempted strategy.
        spent: u64,
        /// The node's budget.
        budget: u64,
    },
    /// The disconnection penalty is too small to dominate in-graph distances,
    /// which breaks the paper's standing assumption `M ≫ n·max ℓ`.
    PenaltyTooSmall {
        /// The configured penalty.
        penalty: u64,
        /// The smallest acceptable value.
        minimum: u64,
    },
    /// An exact search (best response or equilibrium enumeration) would
    /// exceed its configured evaluation budget. Raise the limit or use a
    /// heuristic mode.
    SearchBudgetExceeded {
        /// The configured evaluation limit.
        limit: u64,
    },
    /// A matrix argument had the wrong dimensions.
    DimensionMismatch {
        /// Expected dimension (game size).
        expected: usize,
        /// Provided dimension.
        actual: usize,
    },
    /// A restricted profile space listed no candidate strategies for some
    /// node, which would make the product empty.
    EmptyCandidateSet {
        /// The node with an empty candidate list.
        node: NodeId,
    },
    /// A churn-aware operation addressed a node that is not currently a
    /// live member (it departed, or was never admitted with links).
    NodeNotLive {
        /// The departed node.
        node: NodeId,
    },
    /// [`crate::DistanceEngine::add_node`] was asked to admit a node that is
    /// already live.
    NodeAlreadyLive {
        /// The already-live node.
        node: NodeId,
    },
    /// A strategy targets a node that is not currently a live member —
    /// links to departed peers are forbidden (they would silently absorb
    /// traffic a real overlay could never route).
    TargetNotLive {
        /// The buying node.
        node: NodeId,
        /// The departed target.
        target: NodeId,
    },
    /// A parallel worker thread panicked (or poisoned a shared lock while
    /// panicking). The underlying panic payload has already been printed by
    /// the default hook; this variant lets the driver fail its whole batch
    /// with a typed error instead of re-raising in the caller's thread.
    WorkerPanicked {
        /// Which parallel section lost the worker.
        section: &'static str,
    },
    /// A forced-u32 engine was requested for a spec whose clamped rows do
    /// not fit the narrow word: `n·M` must stay within `u32::MAX` so that
    /// every row aggregate is representable without wrapping.
    RowTierOverflow {
        /// The game size.
        n: usize,
        /// The configured disconnection penalty.
        penalty: u64,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::EmptyGame => write!(f, "game must have at least one node"),
            Error::NodeOutOfBounds { node, n } => {
                write!(f, "node {node} out of bounds for game of size {n}")
            }
            Error::SelfLink { node } => write!(f, "node {node} may not link to itself"),
            Error::DuplicateTarget { node, target } => {
                write!(f, "node {node} lists target {target} more than once")
            }
            Error::BudgetExceeded {
                node,
                spent,
                budget,
            } => {
                write!(f, "node {node} spends {spent} but has budget {budget}")
            }
            Error::PenaltyTooSmall { penalty, minimum } => {
                write!(
                    f,
                    "disconnection penalty {penalty} below required minimum {minimum}"
                )
            }
            Error::SearchBudgetExceeded { limit } => {
                write!(f, "exact search exceeded its evaluation limit of {limit}")
            }
            Error::DimensionMismatch { expected, actual } => {
                write!(
                    f,
                    "matrix dimension {actual} does not match game size {expected}"
                )
            }
            Error::EmptyCandidateSet { node } => {
                write!(f, "node {node} has no candidate strategies")
            }
            Error::NodeNotLive { node } => {
                write!(f, "node {node} is not a live member")
            }
            Error::NodeAlreadyLive { node } => {
                write!(f, "node {node} is already a live member")
            }
            Error::TargetNotLive { node, target } => {
                write!(
                    f,
                    "node {node} links to {target}, which is not a live member"
                )
            }
            Error::WorkerPanicked { section } => {
                write!(f, "a {section} worker thread panicked")
            }
            Error::RowTierOverflow { n, penalty } => {
                write!(
                    f,
                    "u32 row tier cannot hold n*penalty = {n}*{penalty}; use the u64 tier"
                )
            }
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_specific() {
        let e = Error::BudgetExceeded {
            node: NodeId::new(2),
            spent: 5,
            budget: 3,
        };
        assert_eq!(e.to_string(), "node v2 spends 5 but has budget 3");
        let e = Error::SearchBudgetExceeded { limit: 10 };
        assert!(e.to_string().contains("10"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}

//! Game specifications: the tuple `⟨V, w, c, ℓ, b⟩` of the paper's §2.
//!
//! A [`GameSpec`] fixes everything about a BBC game except the strategies:
//! node count, preference weights `w(u,v)`, link costs `c(u,v)`, link lengths
//! `ℓ(u,v)`, budgets `b(u)`, the disconnection penalty `M`, and whether node
//! cost aggregates distances by sum (BBC) or by max (BBC-max, §5).
//!
//! Uniform `(n,k)` games get a dedicated constant-space representation —
//! dynamics experiments run thousands of steps on graphs where `n²` matrices
//! would dominate memory and cache traffic.

use serde::{Deserialize, Serialize};

use crate::{Error, NodeId, Result};

/// How a node aggregates its preference-weighted distances into a cost.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CostModel {
    /// `cost(u) = Σ_v w(u,v)·d(u,v)` — the BBC game of §2.
    #[default]
    SumDistance,
    /// `cost(u) = max_v w(u,v)·d(u,v)` — the BBC-max game of §5.
    MaxDistance,
}

/// Dense row-major `n × n` matrix of `u64` entries.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
struct Square {
    n: usize,
    data: Vec<u64>,
}

impl Square {
    fn filled(n: usize, value: u64) -> Self {
        Self {
            n,
            data: vec![value; n * n],
        }
    }

    #[inline]
    fn get(&self, u: usize, v: usize) -> u64 {
        self.data[u * self.n + v]
    }

    #[inline]
    fn set(&mut self, u: usize, v: usize, value: u64) {
        self.data[u * self.n + v] = value;
    }
}

#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
enum SpecKind {
    /// All weights, costs and lengths are 1; every budget is `k`.
    Uniform { k: u64 },
    /// Explicit matrices.
    General {
        weights: Square,
        link_costs: Square,
        lengths: Square,
        budgets: Vec<u64>,
    },
}

/// An immutable BBC game specification.
///
/// Construct uniform games with [`GameSpec::uniform`] and everything else
/// through [`GameSpec::builder`].
///
/// # Examples
///
/// ```
/// use bbc_core::{CostModel, GameSpec};
///
/// let g = GameSpec::uniform(16, 2);
/// assert_eq!(g.node_count(), 16);
/// assert_eq!(g.budget(bbc_core::NodeId::new(0)), 2);
/// assert!(g.is_uniform());
///
/// let max_game = g.with_cost_model(CostModel::MaxDistance);
/// assert_eq!(max_game.cost_model(), CostModel::MaxDistance);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct GameSpec {
    n: usize,
    kind: SpecKind,
    penalty: u64,
    cost_model: CostModel,
    unit_lengths: bool,
    max_length: u64,
}

impl GameSpec {
    /// The `(n, k)`-uniform game of §4: unit weights, costs and lengths, and
    /// budget `k` everywhere.
    ///
    /// The disconnection penalty defaults to `n²`, which exceeds the largest
    /// possible finite distance sum `(n−1)²` and therefore makes best
    /// responses reach-monotone (the property Lemma 9 relies on; the paper
    /// assumes `M > n` but the dynamics argument needs the stronger bound to
    /// be airtight — see DESIGN.md). Override with [`GameSpec::with_penalty`].
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`; `k` may exceed `n−1` (budget simply goes unspent),
    /// and `k == 0` is legal (an empty game where everyone is trivially
    /// stable), matching the model's "spend at most `b(u)`" constraint.
    pub fn uniform(n: usize, k: u64) -> Self {
        assert!(n > 0, "game must have at least one node");
        let n64 = n as u64;
        Self {
            n,
            kind: SpecKind::Uniform { k },
            penalty: (n64 * n64).max(n64 + 1),
            cost_model: CostModel::SumDistance,
            unit_lengths: true,
            max_length: 1,
        }
    }

    /// Starts building a non-uniform game on `n` nodes.
    pub fn builder(n: usize) -> GameSpecBuilder {
        GameSpecBuilder::new(n)
    }

    /// Number of players.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// `u`'s preference weight for reaching `v`; `0` on the diagonal.
    #[inline]
    pub fn weight(&self, u: NodeId, v: NodeId) -> u64 {
        if u == v {
            return 0;
        }
        match &self.kind {
            SpecKind::Uniform { .. } => 1,
            SpecKind::General { weights, .. } => weights.get(u.index(), v.index()),
        }
    }

    /// Cost for `u` to establish the link `(u, v)`.
    #[inline]
    pub fn link_cost(&self, u: NodeId, v: NodeId) -> u64 {
        match &self.kind {
            SpecKind::Uniform { .. } => 1,
            SpecKind::General { link_costs, .. } => link_costs.get(u.index(), v.index()),
        }
    }

    /// Length of the link `(u, v)` if established.
    #[inline]
    pub fn link_length(&self, u: NodeId, v: NodeId) -> u64 {
        match &self.kind {
            SpecKind::Uniform { .. } => 1,
            SpecKind::General { lengths, .. } => lengths.get(u.index(), v.index()),
        }
    }

    /// `u`'s budget for buying outgoing links.
    #[inline]
    pub fn budget(&self, u: NodeId) -> u64 {
        match &self.kind {
            SpecKind::Uniform { k } => *k,
            SpecKind::General { budgets, .. } => budgets[u.index()],
        }
    }

    /// The disconnection penalty `M` charged as the "distance" to an
    /// unreachable node.
    #[inline]
    pub fn penalty(&self) -> u64 {
        self.penalty
    }

    /// How node costs aggregate distances.
    #[inline]
    pub fn cost_model(&self) -> CostModel {
        self.cost_model
    }

    /// `true` for `(n,k)`-uniform games (constant-space representation).
    pub fn is_uniform(&self) -> bool {
        matches!(self.kind, SpecKind::Uniform { .. })
    }

    /// The shared budget `k` of a uniform game, or `None` for general games.
    pub fn uniform_k(&self) -> Option<u64> {
        match &self.kind {
            SpecKind::Uniform { k } => Some(*k),
            SpecKind::General { .. } => None,
        }
    }

    /// `true` when every link length is 1 (shortest paths reduce to BFS).
    #[inline]
    pub fn has_unit_lengths(&self) -> bool {
        self.unit_lengths
    }

    /// The largest link length in the game.
    #[inline]
    pub fn max_link_length(&self) -> u64 {
        self.max_length
    }

    /// Replaces the disconnection penalty.
    ///
    /// # Errors
    ///
    /// Returns [`Error::PenaltyTooSmall`] unless `penalty > n·max ℓ`, the
    /// standing assumption `M ≫ n·max ℓ` of §2 (we enforce the weak
    /// inequality that keeps every finite distance strictly below `M`).
    pub fn with_penalty(mut self, penalty: u64) -> Result<Self> {
        let minimum = (self.n as u64) * self.max_length + 1;
        if penalty < minimum {
            return Err(Error::PenaltyTooSmall { penalty, minimum });
        }
        self.penalty = penalty;
        Ok(self)
    }

    /// Switches between BBC (sum) and BBC-max aggregation.
    pub fn with_cost_model(mut self, cost_model: CostModel) -> Self {
        self.cost_model = cost_model;
        self
    }

    /// Total link cost of a strategy for `u`.
    pub fn strategy_cost(&self, u: NodeId, targets: &[NodeId]) -> u64 {
        targets.iter().map(|&v| self.link_cost(u, v)).sum()
    }

    /// Checks that `targets` is a legal strategy for `u`: in-bounds, no
    /// self-link, no duplicates, within budget.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint as an [`Error`].
    pub fn validate_strategy(&self, u: NodeId, targets: &[NodeId]) -> Result<()> {
        if u.index() >= self.n {
            return Err(Error::NodeOutOfBounds { node: u, n: self.n });
        }
        let mut seen = vec![false; self.n];
        let mut spent = 0u64;
        for &v in targets {
            if v.index() >= self.n {
                return Err(Error::NodeOutOfBounds { node: v, n: self.n });
            }
            if v == u {
                return Err(Error::SelfLink { node: u });
            }
            if seen[v.index()] {
                return Err(Error::DuplicateTarget { node: u, target: v });
            }
            seen[v.index()] = true;
            spent += self.link_cost(u, v);
        }
        let budget = self.budget(u);
        if spent > budget {
            return Err(Error::BudgetExceeded {
                node: u,
                spent,
                budget,
            });
        }
        Ok(())
    }

    /// Targets `u` can afford individually: `{v ≠ u : c(u,v) ≤ b(u)}`.
    ///
    /// This is the candidate pool every best-response search draws from.
    pub fn affordable_targets(&self, u: NodeId) -> Vec<NodeId> {
        let budget = self.budget(u);
        NodeId::all(self.n)
            .filter(|&v| v != u && self.link_cost(u, v) <= budget)
            .collect()
    }
}

/// Builder for non-uniform games. Defaults: weight 1, link cost 1, link
/// length 1, budget 1, sum-distance cost model.
///
/// # Examples
///
/// ```
/// use bbc_core::{GameSpec, NodeId};
///
/// let spec = GameSpec::builder(3)
///     .default_budget(1)
///     .weight(0, 1, 5)
///     .link_length(0, 2, 9)
///     .budget(2, 0)
///     .build()?;
/// assert_eq!(spec.weight(NodeId::new(0), NodeId::new(1)), 5);
/// assert_eq!(spec.budget(NodeId::new(2)), 0);
/// # Ok::<(), bbc_core::Error>(())
/// ```
#[derive(Clone, Debug)]
pub struct GameSpecBuilder {
    n: usize,
    weights: Square,
    link_costs: Square,
    lengths: Square,
    budgets: Vec<u64>,
    penalty: Option<u64>,
    cost_model: CostModel,
}

impl GameSpecBuilder {
    fn new(n: usize) -> Self {
        Self {
            n,
            weights: Square::filled(n, 1),
            link_costs: Square::filled(n, 1),
            lengths: Square::filled(n, 1),
            budgets: vec![1; n],
            penalty: None,
            cost_model: CostModel::SumDistance,
        }
    }

    /// Sets every preference weight to `w`.
    pub fn default_weight(mut self, w: u64) -> Self {
        self.weights = Square::filled(self.n, w);
        self
    }

    /// Sets every link cost to `c`.
    pub fn default_link_cost(mut self, c: u64) -> Self {
        self.link_costs = Square::filled(self.n, c);
        self
    }

    /// Sets every link length to `l`.
    pub fn default_link_length(mut self, l: u64) -> Self {
        self.lengths = Square::filled(self.n, l);
        self
    }

    /// Sets every budget to `b`.
    pub fn default_budget(mut self, b: u64) -> Self {
        self.budgets = vec![b; self.n];
        self
    }

    /// Sets `w(u, v)`.
    pub fn weight(mut self, u: usize, v: usize, w: u64) -> Self {
        self.weights.set(u, v, w);
        self
    }

    /// Sets `c(u, v)`.
    pub fn link_cost(mut self, u: usize, v: usize, c: u64) -> Self {
        self.link_costs.set(u, v, c);
        self
    }

    /// Sets `ℓ(u, v)`.
    pub fn link_length(mut self, u: usize, v: usize, l: u64) -> Self {
        self.lengths.set(u, v, l);
        self
    }

    /// Sets `b(u)`.
    pub fn budget(mut self, u: usize, b: u64) -> Self {
        self.budgets[u] = b;
        self
    }

    /// Sets the disconnection penalty explicitly (validated in
    /// [`GameSpecBuilder::build`]).
    pub fn penalty(mut self, m: u64) -> Self {
        self.penalty = Some(m);
        self
    }

    /// Sets the cost model.
    pub fn cost_model(mut self, cm: CostModel) -> Self {
        self.cost_model = cm;
        self
    }

    /// Finalizes the spec.
    ///
    /// # Errors
    ///
    /// - [`Error::EmptyGame`] if `n == 0`.
    /// - [`Error::PenaltyTooSmall`] if an explicit penalty does not exceed
    ///   `n·max ℓ`. Without an explicit penalty, `n·max ℓ + 1` is used —
    ///   callers that rely on reach-monotone dynamics should raise it.
    pub fn build(self) -> Result<GameSpec> {
        if self.n == 0 {
            return Err(Error::EmptyGame);
        }
        let mut max_length = 1u64;
        let mut unit_lengths = true;
        for u in 0..self.n {
            for v in 0..self.n {
                if u == v {
                    continue;
                }
                let l = self.lengths.get(u, v);
                assert!(l > 0, "link length ({u},{v}) must be positive");
                max_length = max_length.max(l);
                unit_lengths &= l == 1;
            }
        }
        let minimum = (self.n as u64) * max_length + 1;
        let penalty = self.penalty.unwrap_or(minimum);
        if penalty < minimum {
            return Err(Error::PenaltyTooSmall { penalty, minimum });
        }
        Ok(GameSpec {
            n: self.n,
            kind: SpecKind::General {
                weights: self.weights,
                link_costs: self.link_costs,
                lengths: self.lengths,
                budgets: self.budgets,
            },
            penalty,
            cost_model: self.cost_model,
            unit_lengths,
            max_length,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn uniform_game_accessors() {
        let g = GameSpec::uniform(10, 3);
        assert_eq!(g.node_count(), 10);
        assert_eq!(g.uniform_k(), Some(3));
        assert_eq!(g.weight(v(0), v(1)), 1);
        assert_eq!(g.weight(v(4), v(4)), 0, "diagonal weight is zero");
        assert_eq!(g.link_cost(v(0), v(1)), 1);
        assert_eq!(g.link_length(v(0), v(1)), 1);
        assert_eq!(g.budget(v(9)), 3);
        assert_eq!(g.penalty(), 100);
        assert!(g.has_unit_lengths());
        assert_eq!(g.cost_model(), CostModel::SumDistance);
    }

    #[test]
    fn uniform_small_n_penalty_still_dominates() {
        let g = GameSpec::uniform(1, 1);
        assert!(g.penalty() > 1);
    }

    #[test]
    fn builder_sets_individual_entries() {
        let g = GameSpec::builder(4)
            .weight(0, 3, 7)
            .link_cost(1, 2, 4)
            .link_length(2, 0, 9)
            .budget(3, 0)
            .build()
            .unwrap();
        assert_eq!(g.weight(v(0), v(3)), 7);
        assert_eq!(g.link_cost(v(1), v(2)), 4);
        assert_eq!(g.link_length(v(2), v(0)), 9);
        assert_eq!(g.budget(v(3)), 0);
        assert!(!g.has_unit_lengths());
        assert_eq!(g.max_link_length(), 9);
        assert!(!g.is_uniform());
        assert_eq!(g.uniform_k(), None);
    }

    #[test]
    fn default_penalty_exceeds_n_times_max_length() {
        let g = GameSpec::builder(5)
            .default_link_length(10)
            .build()
            .unwrap();
        assert_eq!(g.penalty(), 51);
    }

    #[test]
    fn explicit_penalty_validated() {
        let err = GameSpec::builder(5)
            .default_link_length(10)
            .penalty(50)
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            Error::PenaltyTooSmall {
                penalty: 50,
                minimum: 51
            }
        );
        assert!(GameSpec::builder(5)
            .default_link_length(10)
            .penalty(51)
            .build()
            .is_ok());
    }

    #[test]
    fn with_penalty_validates_minimum() {
        let g = GameSpec::uniform(4, 1);
        assert!(g.clone().with_penalty(4).is_err());
        assert_eq!(g.with_penalty(1000).unwrap().penalty(), 1000);
    }

    #[test]
    fn empty_game_rejected() {
        assert_eq!(GameSpec::builder(0).build().unwrap_err(), Error::EmptyGame);
    }

    #[test]
    fn validate_strategy_catches_each_violation() {
        let g = GameSpec::uniform(5, 2);
        let u = v(0);
        assert!(g.validate_strategy(u, &[v(1), v(2)]).is_ok());
        assert!(
            g.validate_strategy(u, &[]).is_ok(),
            "buying nothing is legal"
        );
        assert_eq!(
            g.validate_strategy(u, &[v(9)]),
            Err(Error::NodeOutOfBounds { node: v(9), n: 5 })
        );
        assert_eq!(
            g.validate_strategy(u, &[v(0)]),
            Err(Error::SelfLink { node: u })
        );
        assert_eq!(
            g.validate_strategy(u, &[v(1), v(1)]),
            Err(Error::DuplicateTarget {
                node: u,
                target: v(1)
            })
        );
        assert_eq!(
            g.validate_strategy(u, &[v(1), v(2), v(3)]),
            Err(Error::BudgetExceeded {
                node: u,
                spent: 3,
                budget: 2
            })
        );
    }

    #[test]
    fn nonuniform_budget_validation_uses_link_costs() {
        let g = GameSpec::builder(4)
            .default_budget(5)
            .link_cost(0, 1, 3)
            .link_cost(0, 2, 3)
            .build()
            .unwrap();
        assert!(g.validate_strategy(v(0), &[v(1), v(3)]).is_ok()); // 3 + 1 = 4
        assert!(g.validate_strategy(v(0), &[v(1), v(2)]).is_err()); // 3 + 3 = 6
    }

    #[test]
    fn affordable_targets_respects_budget_and_self() {
        let g = GameSpec::builder(4)
            .default_budget(2)
            .link_cost(0, 2, 3)
            .build()
            .unwrap();
        assert_eq!(g.affordable_targets(v(0)), vec![v(1), v(3)]);
        assert_eq!(g.affordable_targets(v(1)), vec![v(0), v(2), v(3)]);
    }

    #[test]
    fn strategy_cost_sums_link_costs() {
        let g = GameSpec::builder(3)
            .link_cost(0, 1, 2)
            .link_cost(0, 2, 5)
            .build()
            .unwrap();
        assert_eq!(g.strategy_cost(v(0), &[v(1), v(2)]), 7);
    }
}

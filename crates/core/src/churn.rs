//! Churn runtime: dynamic node membership under best-response play.
//!
//! The BBC paper's motivating domain is peer-to-peer overlays (§1.1), whose
//! defining workload is *churn*: peers join and leave while the remaining
//! players re-optimize their bounded-budget links. [`ChurnSim`] drives that
//! workload end to end on the engine's node-lifecycle layer
//! ([`crate::DistanceEngine::remove_node`] /
//! [`crate::DistanceEngine::add_node`]): a deterministic, seed-driven event
//! stream of joins, leaves and (optional) strategy shocks is interleaved
//! with best-response play through the ordinary [`Walk`] schedulers — the
//! per-step oracle fan-out rides [`Walk::prefill_threads`] unchanged.
//!
//! # Event model
//!
//! Between stabilization phases the sim draws one [`ChurnEvent`] from a
//! seeded RNG, weighted by [`ChurnConfig`] and gated by feasibility:
//!
//! * **leave** — a uniformly drawn live peer departs (never below
//!   [`ChurnConfig::min_live`] members). Its links, and every link *to* it,
//!   vanish; the survivors are left holding the disconnection exposure.
//! * **join** — a uniformly drawn departed slot is re-admitted with a
//!   random budget-greedy strategy over *live* targets (in-links form later
//!   through the other players' best responses, as in a real overlay).
//! * **shock** — a live peer's strategy is forcibly rewired to a random
//!   one (operator intervention or fault; off by default —
//!   [`ChurnConfig::shock_weight`] is 0).
//!
//! After each event the walk runs until it re-certifies an equilibrium,
//! certifies an exact best-response loop (§4.3 play need not settle), or
//! the per-event budget [`ChurnConfig::settle_steps`] expires, and the sim
//! records the stabilization metrics in an [`EventRecord`]: steps and moves
//! to re-equilibrate, the social-cost spike and the regret it implies, and
//! the disconnection-penalty exposure the event created and how much of it
//! survived settling.
//!
//! # Determinism contract
//!
//! Everything is a pure function of `(spec, start, ChurnConfig)`: the RNG
//! is a seeded [`SmallRng`] consulted in a fixed order, schedulers are the
//! deterministic [`Walk`] ones, and the parallel oracle prefill is
//! byte-identical at every thread count — so the full event/move trajectory
//! (hence [`ChurnReport::trajectory_digest`]) reproduces bit-for-bit across
//! runs, thread counts, and machines. The release test suite pins a fixed
//! seed's digest.
//!
//! ```
//! use bbc_core::{ChurnConfig, ChurnSim, Configuration, GameSpec};
//!
//! let spec = GameSpec::uniform(8, 1);
//! let cfg = ChurnConfig {
//!     seed: 7,
//!     events: 4,
//!     settle_steps: 10_000,
//!     ..ChurnConfig::default()
//! };
//! let report = ChurnSim::new(&spec, Configuration::empty(8), cfg.clone()).run()?;
//! assert_eq!(report.events.len(), 4);
//! assert!(report.initial_settled, "an (8,1) game settles from empty");
//! // Determinism: an identical sim replays the identical trajectory.
//! let again = ChurnSim::new(&spec, Configuration::empty(8), cfg).run()?;
//! assert_eq!(report.trajectory_digest, again.trajectory_digest);
//! # Ok::<(), bbc_core::Error>(())
//! ```

use rand::{rngs::SmallRng, seq::SliceRandom, Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::{Configuration, GameSpec, NodeId, Result, Scheduler, Walk, WalkOutcome};

/// Tuning of a churn simulation. Everything that decides the trajectory is
/// in here — two sims with equal `(spec, start, config)` are byte-identical.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChurnConfig {
    /// Seed of the event stream (and of join/shock strategy draws).
    pub seed: u64,
    /// Number of churn events to apply.
    pub events: u32,
    /// Leaves never drop the membership below this many live peers.
    pub min_live: usize,
    /// Per-phase step budget: the initial stabilization and each post-event
    /// re-equilibration run at most this many best-response steps.
    pub settle_steps: u64,
    /// Relative weight of leave events (when feasible).
    pub leave_weight: u32,
    /// Relative weight of join events (when a departed slot exists).
    pub join_weight: u32,
    /// Relative weight of strategy shocks (0 disables them — the default).
    pub shock_weight: u32,
    /// OS threads for the per-step oracle fan-out
    /// ([`Walk::prefill_threads`]); never changes the trajectory.
    pub prefill_threads: usize,
    /// Which deterministic scheduler plays between events.
    pub scheduler: Scheduler,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            events: 8,
            min_live: 2,
            settle_steps: 100_000,
            leave_weight: 1,
            join_weight: 1,
            shock_weight: 0,
            prefill_threads: 1,
            scheduler: Scheduler::RoundRobin,
        }
    }
}

/// One membership / strategy perturbation applied by the sim.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChurnEvent {
    /// A live peer departed.
    Leave {
        /// The departing peer.
        node: NodeId,
    },
    /// A departed slot (re)joined with the given opening strategy.
    Join {
        /// The joining peer.
        node: NodeId,
        /// Its opening links (random budget-greedy over live targets).
        strategy: Vec<NodeId>,
    },
    /// A live peer's strategy was forcibly rewired (no best response).
    Shock {
        /// The shocked peer.
        node: NodeId,
        /// The imposed strategy.
        strategy: Vec<NodeId>,
    },
}

impl ChurnEvent {
    /// The peer the event acts on.
    pub fn node(&self) -> NodeId {
        match self {
            ChurnEvent::Leave { node }
            | ChurnEvent::Join { node, .. }
            | ChurnEvent::Shock { node, .. } => *node,
        }
    }
}

/// Stabilization metrics of one applied event.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventRecord {
    /// The applied event.
    pub event: ChurnEvent,
    /// Live members after the event.
    pub live_after: u32,
    /// Social cost just before the event (post previous settling).
    pub cost_before: u64,
    /// Social cost immediately after the event, before any best response —
    /// the spike the survivors must play their way out of.
    pub cost_spike: u64,
    /// Ordered live pairs left unreachable by the event (each priced at
    /// `w·M` inside [`EventRecord::cost_spike`]).
    pub disconnected_after_event: u64,
    /// Best-response steps (stability tests) until re-certified equilibrium
    /// or budget expiry.
    pub steps_to_requilibrate: u64,
    /// Strategy changes among those steps.
    pub moves: u64,
    /// `true` when the walk re-certified a pure Nash equilibrium within the
    /// budget.
    pub settled: bool,
    /// `true` when the phase instead certified an exact best-response loop
    /// (§4.3: BBC games are not potential games — play may never settle).
    pub looped: bool,
    /// Social cost after settling.
    pub cost_settled: u64,
    /// Disconnection exposure that survived settling (0 = fully healed).
    pub disconnected_settled: u64,
    /// `cost_spike − cost_settled`: how much of the spike best-response
    /// play recovered (negative when settling got *costlier*, which joins
    /// can legitimately cause — more live pairs to serve).
    pub regret: i64,
}

/// Everything a finished churn simulation measured.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChurnReport {
    /// Steps of the initial (pre-churn) stabilization phase.
    pub initial_steps: u64,
    /// Whether the initial phase certified an equilibrium.
    pub initial_settled: bool,
    /// One record per applied event, in order.
    pub events: Vec<EventRecord>,
    /// Live members at the end.
    pub final_live: u32,
    /// Social cost at the end.
    pub final_social_cost: u64,
    /// The final engine state digest
    /// ([`crate::DistanceEngine::state_digest`]).
    pub state_digest: u64,
    /// FNV-1a digest of the full trajectory: every event, every metric,
    /// and the final state. Equal digests ⇒ byte-identical runs.
    pub trajectory_digest: u64,
}

impl ChurnReport {
    /// Fraction of events whose re-equilibration settled within budget
    /// (1.0 when no events were applied).
    pub fn settled_fraction(&self) -> f64 {
        if self.events.is_empty() {
            return 1.0;
        }
        self.events.iter().filter(|e| e.settled).count() as f64 / self.events.len() as f64
    }

    /// Largest per-event re-equilibration step count.
    pub fn max_steps_to_requilibrate(&self) -> u64 {
        self.events
            .iter()
            .map(|e| e.steps_to_requilibrate)
            .max()
            .unwrap_or(0)
    }

    /// Mean per-event re-equilibration step count (0 with no events).
    pub fn mean_steps_to_requilibrate(&self) -> f64 {
        if self.events.is_empty() {
            return 0.0;
        }
        self.events
            .iter()
            .map(|e| e.steps_to_requilibrate)
            .sum::<u64>() as f64
            / self.events.len() as f64
    }

    /// Sum of the per-event regrets (spike minus settled cost).
    pub fn total_regret(&self) -> i64 {
        self.events.iter().map(|e| e.regret).sum()
    }

    /// Largest disconnection exposure any single event created.
    pub fn max_disconnected(&self) -> u64 {
        self.events
            .iter()
            .map(|e| e.disconnected_after_event)
            .max()
            .unwrap_or(0)
    }

    /// `true` when every event's disconnection exposure was fully healed
    /// by its re-equilibration phase.
    pub fn all_exposure_healed(&self) -> bool {
        self.events.iter().all(|e| e.disconnected_settled == 0)
    }
}

/// A churn-capable overlay simulation (see the module docs).
#[derive(Debug)]
pub struct ChurnSim<'a> {
    walk: Walk<'a>,
    rng: SmallRng,
    cfg: ChurnConfig,
    capacity: usize,
}

impl<'a> ChurnSim<'a> {
    /// Creates a simulation over `spec`'s full peer universe, starting from
    /// `start` with every node live.
    ///
    /// # Panics
    ///
    /// Panics if `start`'s node count differs from the spec's.
    pub fn new(spec: &'a GameSpec, start: Configuration, cfg: ChurnConfig) -> Self {
        // Cycle detection stays on: §4.3 walks need not settle at all, and
        // a certified exact-state loop ends a phase deterministically
        // instead of burning the whole settle budget re-treading it.
        let walk = Walk::new(spec, start)
            .with_scheduler(cfg.scheduler.clone())
            .prefill_threads(cfg.prefill_threads);
        Self {
            walk,
            rng: SmallRng::seed_from_u64(cfg.seed),
            cfg,
            capacity: spec.node_count(),
        }
    }

    /// [`ChurnSim::new`] on an explicit engine row tier (the tier never
    /// changes a trajectory — the cross-width differential suite pins it —
    /// so this exists for benchmarks and tier-forcing tests).
    ///
    /// # Errors
    ///
    /// As [`crate::DistanceEngine::with_tier`].
    pub fn with_tier(
        spec: &'a GameSpec,
        start: Configuration,
        cfg: ChurnConfig,
        tier: crate::RowTier,
    ) -> Result<Self> {
        let walk = Walk::with_tier(spec, start, tier)?
            .with_scheduler(cfg.scheduler.clone())
            .prefill_threads(cfg.prefill_threads);
        Ok(Self {
            walk,
            rng: SmallRng::seed_from_u64(cfg.seed),
            cfg,
            capacity: spec.node_count(),
        })
    }

    /// Sets the engine's landmark bound policy ([`crate::LandmarkPolicy`])
    /// for every settle phase. Deliberately *not* part of [`ChurnConfig`]:
    /// admissible bounds never change an event draw, trajectory, or
    /// [`ChurnReport`] digest, so the policy is a runtime knob rather than
    /// a fingerprinted simulation parameter.
    #[must_use]
    pub fn with_landmarks(mut self, policy: crate::LandmarkPolicy) -> Self {
        self.walk.set_landmark_policy(policy);
        self
    }

    /// The walk (and engine state) as the simulation left it.
    pub fn walk(&self) -> &Walk<'a> {
        &self.walk
    }

    /// Publishes the simulation's effort counters into a metrics registry:
    /// the underlying walk/engine metrics plus the churn lifecycle gauges
    /// (`churn/capacity`, `churn/live_members`). Observational only —
    /// mirrors the [`ChurnSim::with_landmarks`] precedent of keeping
    /// non-trajectory knobs out of the fingerprinted [`ChurnConfig`].
    pub fn publish_metrics(&self, reg: &mut bbc_obs::Registry) {
        self.walk.publish_metrics(reg);
        reg.set_gauge("churn/capacity", self.capacity as u64);
        reg.set_gauge("churn/live_members", self.walk.live_count() as u64);
    }

    /// Consumes the sim, returning the walk for further play.
    pub fn into_walk(self) -> Walk<'a> {
        self.walk
    }

    /// Runs the full simulation: initial stabilization, then
    /// [`ChurnConfig::events`] draw/apply/settle rounds.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::Error::SearchBudgetExceeded`] from the
    /// best-response searches.
    pub fn run(&mut self) -> Result<ChurnReport> {
        let initial_outcome = self.settle()?;
        let initial_steps = self.walk.stats().steps;
        let initial_settled = matches!(initial_outcome, WalkOutcome::Equilibrium { .. });

        let mut events = Vec::new();
        for _ in 0..self.cfg.events {
            let cost_before = self.walk.social_cost();
            let Some(event) = self.draw_event() else {
                break; // no feasible event under the configured weights
            };
            match &event {
                ChurnEvent::Leave { node } => self.walk.remove_node(*node)?,
                ChurnEvent::Join { node, strategy } => {
                    self.walk.add_node(*node, strategy.clone())?;
                }
                ChurnEvent::Shock { node, strategy } => {
                    self.walk.shock_node(*node, strategy.clone())?;
                }
            }
            let cost_spike = self.walk.social_cost();
            let disconnected_after_event = self.walk.disconnected_live_pairs();
            let steps_before = self.walk.stats().steps;
            let moves_before = self.walk.stats().moves;
            let outcome = self.settle()?;
            let cost_settled = self.walk.social_cost();
            events.push(EventRecord {
                live_after: self.walk.live_count() as u32,
                cost_before,
                cost_spike,
                disconnected_after_event,
                steps_to_requilibrate: self.walk.stats().steps - steps_before,
                moves: self.walk.stats().moves - moves_before,
                settled: matches!(outcome, WalkOutcome::Equilibrium { .. }),
                looped: matches!(outcome, WalkOutcome::Cycle { .. }),
                cost_settled,
                disconnected_settled: self.walk.disconnected_live_pairs(),
                regret: cost_spike as i64 - cost_settled as i64,
                event,
            });
        }

        let mut report = ChurnReport {
            initial_steps,
            initial_settled,
            final_live: self.walk.live_count() as u32,
            final_social_cost: self.walk.social_cost(),
            state_digest: self.walk.state_digest(),
            trajectory_digest: 0,
            events,
        };
        report.trajectory_digest = digest_report(&report);
        Ok(report)
    }

    /// Runs the walk for up to [`ChurnConfig::settle_steps`] further steps.
    fn settle(&mut self) -> Result<WalkOutcome> {
        let target = self.walk.stats().steps + self.cfg.settle_steps;
        self.walk.run(target)
    }

    /// Draws the next feasible event; `None` when every weight is gated off
    /// (e.g. joins disabled and the membership already at `min_live`).
    fn draw_event(&mut self) -> Option<ChurnEvent> {
        let live_count = self.walk.live_count();
        let w_leave = if live_count > self.cfg.min_live {
            self.cfg.leave_weight
        } else {
            0
        };
        let w_join = if live_count < self.capacity {
            self.cfg.join_weight
        } else {
            0
        };
        let w_shock = if live_count > 0 {
            self.cfg.shock_weight
        } else {
            0
        };
        let total = w_leave + w_join + w_shock;
        if total == 0 {
            return None;
        }
        let roll = self.rng.gen_range(0..total);
        if roll < w_leave {
            let i = self.rng.gen_range(0..live_count);
            let node = self.nth_member(i, true);
            Some(ChurnEvent::Leave { node })
        } else if roll < w_leave + w_join {
            let dead = self.capacity - live_count;
            let i = self.rng.gen_range(0..dead);
            let node = self.nth_member(i, false);
            let strategy = self.random_live_strategy(node);
            Some(ChurnEvent::Join { node, strategy })
        } else {
            let i = self.rng.gen_range(0..live_count);
            let node = self.nth_member(i, true);
            let strategy = self.random_live_strategy(node);
            Some(ChurnEvent::Shock { node, strategy })
        }
    }

    /// The `i`-th live (or departed) node in ascending id order.
    fn nth_member(&self, i: usize, live: bool) -> NodeId {
        NodeId::all(self.capacity)
            .filter(|&u| self.walk.is_live(u) == live)
            .nth(i)
            // bbc-lint: allow(panic, callers draw i below the live or departed member count)
            .expect("index drawn below the member count")
    }

    /// A random budget-greedy strategy over live, affordable targets —
    /// the churn analogue of [`Configuration::random`]'s per-node draw.
    fn random_live_strategy(&mut self, u: NodeId) -> Vec<NodeId> {
        let spec = self.walk.spec();
        let mut pool: Vec<NodeId> = spec
            .affordable_targets(u)
            .into_iter()
            .filter(|&v| v != u && self.walk.is_live(v))
            .collect();
        pool.shuffle(&mut self.rng);
        let mut remaining = spec.budget(u);
        let mut picks = Vec::new();
        for v in pool {
            let c = spec.link_cost(u, v);
            if c <= remaining {
                remaining -= c;
                picks.push(v);
            }
        }
        picks.sort_unstable();
        picks
    }
}

/// FNV-1a over every field of the report except the digest itself (the
/// shared [`bbc_graph::digest::Fnv1a`] fold, so every determinism digest in
/// the workspace uses identical constants).
fn digest_report(report: &ChurnReport) -> u64 {
    let mut h = bbc_graph::digest::Fnv1a::new();
    h.write_u64(report.initial_steps);
    h.write_u64(u64::from(report.initial_settled));
    for e in &report.events {
        let (tag, node, strategy): (u64, NodeId, &[NodeId]) = match &e.event {
            ChurnEvent::Leave { node } => (0, *node, &[]),
            ChurnEvent::Join { node, strategy } => (1, *node, strategy),
            ChurnEvent::Shock { node, strategy } => (2, *node, strategy),
        };
        h.write_u64(tag);
        h.write_u64(node.index() as u64);
        h.write_u64(strategy.len() as u64);
        for &t in strategy {
            h.write_u64(t.index() as u64);
        }
        h.write_u64(u64::from(e.live_after));
        h.write_u64(e.cost_before);
        h.write_u64(e.cost_spike);
        h.write_u64(e.disconnected_after_event);
        h.write_u64(e.steps_to_requilibrate);
        h.write_u64(e.moves);
        h.write_u64(u64::from(e.settled));
        h.write_u64(u64::from(e.looped));
        h.write_u64(e.cost_settled);
        h.write_u64(e.disconnected_settled);
        h.write_u64(e.regret as u64);
    }
    h.write_u64(u64::from(report.final_live));
    h.write_u64(report.final_social_cost);
    h.write_u64(report.state_digest);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(seed: u64, events: u32) -> ChurnConfig {
        ChurnConfig {
            seed,
            events,
            settle_steps: 50_000,
            ..ChurnConfig::default()
        }
    }

    #[test]
    fn sim_is_deterministic_across_prefill_thread_counts() {
        let spec = GameSpec::uniform(10, 2);
        let start = Configuration::random(&spec, 3);
        let run = |threads: usize| {
            let mut c = cfg(42, 6);
            c.prefill_threads = threads;
            ChurnSim::new(&spec, start.clone(), c).run().unwrap()
        };
        let base = run(1);
        assert_eq!(base.events.len(), 6);
        for threads in [2usize, 4] {
            let report = run(threads);
            assert_eq!(report, base, "threads {threads}");
            assert_eq!(report.trajectory_digest, base.trajectory_digest);
        }
    }

    #[test]
    fn sim_is_deterministic_across_schedulers_only_via_config() {
        // Different schedulers give different trajectories; the same
        // config replays exactly.
        let spec = GameSpec::uniform(9, 1);
        let start = Configuration::random(&spec, 1);
        for scheduler in [Scheduler::RoundRobin, Scheduler::MaxCostFirst] {
            let mut c = cfg(7, 5);
            c.scheduler = scheduler;
            let a = ChurnSim::new(&spec, start.clone(), c.clone())
                .run()
                .unwrap();
            let b = ChurnSim::new(&spec, start.clone(), c).run().unwrap();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn events_respect_membership_gates() {
        let spec = GameSpec::uniform(6, 1);
        // Leaves only (joins disabled): the membership must stop shrinking
        // at min_live, after which no feasible event remains.
        let mut c = cfg(11, 10);
        c.join_weight = 0;
        c.min_live = 3;
        let report = ChurnSim::new(&spec, Configuration::empty(6), c)
            .run()
            .unwrap();
        assert_eq!(report.events.len(), 3, "6 → 3 live, then gated off");
        assert!(report
            .events
            .iter()
            .all(|e| matches!(e.event, ChurnEvent::Leave { .. })));
        assert_eq!(report.final_live, 3);
    }

    #[test]
    fn leaves_expose_and_requilibration_heals() {
        // In a settled (n,1) ring-like equilibrium a leave tears the
        // cycle; the survivors must re-link and heal every disconnected
        // pair within the budget.
        let spec = GameSpec::uniform(8, 1);
        let mut c = cfg(5, 4);
        c.join_weight = 0;
        c.min_live = 4;
        let report = ChurnSim::new(&spec, Configuration::empty(8), c)
            .run()
            .unwrap();
        assert!(report.initial_settled);
        assert_eq!(report.events.len(), 4);
        for e in &report.events {
            assert!(e.settled, "every (n,1) re-equilibration settles");
            assert_eq!(e.disconnected_settled, 0, "exposure fully healed");
        }
        assert!(report.all_exposure_healed());
        assert!(report.settled_fraction() >= 1.0);
    }

    #[test]
    fn joins_and_leaves_interleave_and_strategies_stay_valid() {
        let spec = GameSpec::uniform(10, 2);
        let mut c = cfg(23, 12);
        c.shock_weight = 1;
        let mut sim = ChurnSim::new(&spec, Configuration::random(&spec, 9), c);
        let report = sim.run().unwrap();
        assert_eq!(report.events.len(), 12);
        let kinds: Vec<bool> = report
            .events
            .iter()
            .map(|e| matches!(e.event, ChurnEvent::Leave { .. }))
            .collect();
        assert!(kinds.iter().any(|&k| k), "seed 23 draws at least one leave");
        assert!(
            kinds.iter().any(|&k| !k),
            "seed 23 draws at least one join/shock"
        );
        // The final configuration is valid for the final membership.
        let walk = sim.walk();
        for u in NodeId::all(10) {
            if !walk.is_live(u) {
                assert!(walk.config().strategy(u).is_empty());
            } else {
                for &t in walk.config().strategy(u) {
                    assert!(walk.is_live(t), "live {u} links to departed {t}");
                }
            }
        }
    }

    #[test]
    fn regret_accounts_spike_minus_settled() {
        let spec = GameSpec::uniform(8, 1);
        let report = ChurnSim::new(&spec, Configuration::empty(8), cfg(2, 5))
            .run()
            .unwrap();
        for e in &report.events {
            assert_eq!(e.regret, e.cost_spike as i64 - e.cost_settled as i64);
        }
        assert_eq!(
            report.total_regret(),
            report.events.iter().map(|e| e.regret).sum::<i64>()
        );
    }
}

//! Frozen pre-refactor implementations: the executable specification the
//! CSR [`crate::DistanceEngine`] substrate is differentially tested against.
//!
//! This module is a verbatim copy of the original adjacency-list code paths
//! — `Evaluator::node_costs` as one BFS/Dijkstra per node over a freshly
//! materialized [`bbc_graph::DiGraph`], and the deviation-oracle
//! branch-and-bound with `UNREACHABLE`-sentinel rows. It is deliberately
//! **not** kept in sync with performance work elsewhere: its value is that it
//! never changes, so `tests/differential.rs` can assert the optimized engine
//! returns byte-identical `node_costs` / `social_cost` /
//! [`BestResponseOutcome`] values, and `bbc-bench` can measure real speedups
//! against the genuine pre-refactor baseline rather than a moving target.

use bbc_graph::{BfsBuffer, DijkstraBuffer, UNREACHABLE};

use crate::{
    eval::cost_from_distances, BestResponseOptions, BestResponseOutcome, Configuration, CostModel,
    Error, GameSpec, NodeId, Result,
};

/// Pre-refactor per-node costs: one shortest-path run per node over a fresh
/// adjacency-list materialization of `config`.
pub fn node_costs(spec: &GameSpec, config: &Configuration) -> Vec<u64> {
    let n = spec.node_count();
    let graph = config.to_graph(spec);
    let mut bfs = BfsBuffer::new(n);
    let mut dijkstra = DijkstraBuffer::new(n);
    NodeId::all(n)
        .map(|u| {
            if spec.has_unit_lengths() {
                bfs.run(&graph, u.index());
                cost_from_distances(spec, u, bfs.distances())
            } else {
                dijkstra.run(&graph, u.index());
                cost_from_distances(spec, u, dijkstra.distances())
            }
        })
        .collect()
}

/// Pre-refactor social cost (sum of [`node_costs`]).
pub fn social_cost(spec: &GameSpec, config: &Configuration) -> u64 {
    node_costs(spec, config).iter().sum()
}

/// Pre-refactor exact best response: adjacency-list oracle build plus the
/// original branch-and-bound with `UNREACHABLE`-sentinel rows.
///
/// # Errors
///
/// [`Error::SearchBudgetExceeded`] exactly as [`crate::best_response::exact`].
pub fn exact(
    spec: &GameSpec,
    config: &Configuration,
    u: NodeId,
    options: &BestResponseOptions,
) -> Result<BestResponseOutcome> {
    let oracle = Oracle::build(spec, config, u);
    let current_cost = oracle.strategy_cost(config.strategy(u));
    let n = spec.node_count();
    let m = oracle.candidates.len();

    // Optimistic completion rows: suffix[i] = elementwise min of rows[i..].
    // suffix[m] is all-UNREACHABLE.
    let mut suffix = vec![vec![UNREACHABLE; n]; m + 1];
    for i in (0..m).rev() {
        let (head, tail) = suffix.split_at_mut(i + 1);
        head[i].copy_from_slice(&tail[0]);
        min_into(&mut head[i], &oracle.rows[i]);
    }

    let mut search = Search {
        oracle: &oracle,
        options,
        suffix,
        levels: vec![vec![UNREACHABLE; n]; m + 1],
        selection: Vec::new(),
        best_cost: u64::MAX,
        best_strategy: Vec::new(),
        evaluations: 0,
        current_cost,
        done: false,
    };

    // The empty strategy is always feasible; evaluate it as the baseline.
    search.evaluate(0)?;
    search.dfs(0, 0, 0)?;

    Ok(BestResponseOutcome {
        node: u,
        current_cost,
        best_cost: search.best_cost,
        best_strategy: search.best_strategy,
        evaluations: search.evaluations,
        optimal: !search.done,
        bounds_hit: 0,
        rows_materialized: 0,
    })
}

/// The original deviation oracle: per-candidate `Vec<Vec<u64>>` rows with the
/// `UNREACHABLE` sentinel preserved.
struct Oracle<'a> {
    spec: &'a GameSpec,
    node: NodeId,
    candidates: Vec<NodeId>,
    /// `rows[i][v] = ℓ(u, c_i) + d_{G∖u}(c_i, v)`, `UNREACHABLE`-preserving.
    rows: Vec<Vec<u64>>,
    prices: Vec<u64>,
    weighted_targets: Vec<(u32, u64)>,
    budget: u64,
}

impl<'a> Oracle<'a> {
    fn build(spec: &'a GameSpec, config: &Configuration, u: NodeId) -> Self {
        let n = spec.node_count();
        let mut graph = config.to_graph(spec);
        graph.take_out_arcs(u.index());

        let candidates = spec.affordable_targets(u);
        let mut rows = Vec::with_capacity(candidates.len());
        let mut prices = Vec::with_capacity(candidates.len());
        if spec.has_unit_lengths() {
            let mut bfs = BfsBuffer::new(n);
            for &c in &candidates {
                bfs.run(&graph, c.index());
                rows.push(through_row(bfs.distances(), spec.link_length(u, c)));
                prices.push(spec.link_cost(u, c));
            }
        } else {
            let mut dij = DijkstraBuffer::new(n);
            for &c in &candidates {
                dij.run(&graph, c.index());
                rows.push(through_row(dij.distances(), spec.link_length(u, c)));
                prices.push(spec.link_cost(u, c));
            }
        }

        let weighted_targets = NodeId::all(n)
            .filter(|&v| v != u)
            .filter_map(|v| {
                let w = spec.weight(u, v);
                (w > 0).then_some((v.index() as u32, w))
            })
            .collect();

        Self {
            spec,
            node: u,
            candidates,
            rows,
            prices,
            weighted_targets,
            budget: spec.budget(u),
        }
    }

    fn strategy_cost(&self, targets: &[NodeId]) -> u64 {
        let n = self.spec.node_count();
        let mut row = vec![UNREACHABLE; n];
        for &t in targets {
            let i = self
                .candidates
                .binary_search(&t)
                // bbc-lint: allow(panic, frozen reference: callers pass candidate targets by contract)
                .unwrap_or_else(|_| panic!("{t} is not a candidate target of {}", self.node));
            min_into(&mut row, &self.rows[i]);
        }
        self.aggregate(&row)
    }

    fn aggregate(&self, row: &[u64]) -> u64 {
        let m = self.spec.penalty();
        match self.spec.cost_model() {
            CostModel::SumDistance => self
                .weighted_targets
                .iter()
                .map(|&(v, w)| {
                    let d = row[v as usize];
                    w * if d == UNREACHABLE { m } else { d }
                })
                .sum(),
            CostModel::MaxDistance => self
                .weighted_targets
                .iter()
                .map(|&(v, w)| {
                    let d = row[v as usize];
                    w * if d == UNREACHABLE { m } else { d }
                })
                .max()
                .unwrap_or(0),
        }
    }
}

/// `row[v] = link_len + d[v]`, preserving `UNREACHABLE`.
fn through_row(dist: &[u64], link_len: u64) -> Vec<u64> {
    dist.iter()
        .map(|&d| {
            if d == UNREACHABLE {
                UNREACHABLE
            } else {
                link_len + d
            }
        })
        .collect()
}

/// `dst[v] = min(dst[v], src[v])` elementwise.
fn min_into(dst: &mut [u64], src: &[u64]) {
    for (d, &s) in dst.iter_mut().zip(src) {
        if s < *d {
            *d = s;
        }
    }
}

struct Search<'o, 'a> {
    oracle: &'o Oracle<'a>,
    options: &'o BestResponseOptions,
    suffix: Vec<Vec<u64>>,
    levels: Vec<Vec<u64>>,
    selection: Vec<usize>,
    best_cost: u64,
    best_strategy: Vec<NodeId>,
    evaluations: u64,
    current_cost: u64,
    /// Set when stop_at_first_improvement has triggered.
    done: bool,
}

impl Search<'_, '_> {
    /// Evaluates the selection whose min-row sits at `level`.
    fn evaluate(&mut self, level: usize) -> Result<()> {
        self.evaluations += 1;
        if self.evaluations > self.options.evaluation_limit {
            return Err(Error::SearchBudgetExceeded {
                limit: self.options.evaluation_limit,
            });
        }
        let cost = self.oracle.aggregate(&self.levels[level]);
        if cost < self.best_cost {
            self.best_cost = cost;
            self.best_strategy = self
                .selection
                .iter()
                .map(|&i| self.oracle.candidates[i])
                .collect();
            self.best_strategy.sort_unstable();
            if self.options.stop_at_first_improvement && cost < self.current_cost {
                self.done = true;
            }
        }
        Ok(())
    }

    fn dfs(&mut self, i: usize, level: usize, spent: u64) -> Result<()> {
        if self.done || i == self.oracle.candidates.len() {
            return Ok(());
        }
        // Optimistic bound: even taking every remaining candidate for free
        // cannot beat the incumbent -> prune.
        let bound = {
            let m = self.oracle.spec.penalty();
            let cur = &self.levels[level];
            let suf = &self.suffix[i];
            match self.oracle.spec.cost_model() {
                CostModel::SumDistance => self
                    .oracle
                    .weighted_targets
                    .iter()
                    .map(|&(v, w)| {
                        let d = cur[v as usize].min(suf[v as usize]);
                        w * if d == UNREACHABLE { m } else { d }
                    })
                    .sum(),
                CostModel::MaxDistance => self
                    .oracle
                    .weighted_targets
                    .iter()
                    .map(|&(v, w)| {
                        let d = cur[v as usize].min(suf[v as usize]);
                        w * if d == UNREACHABLE { m } else { d }
                    })
                    .max()
                    .unwrap_or(0),
            }
        };
        if bound >= self.best_cost {
            return Ok(());
        }

        // Include candidate i if affordable.
        let price = self.oracle.prices[i];
        if spent + price <= self.oracle.budget {
            let (cur_levels, next_levels) = self.levels.split_at_mut(level + 1);
            next_levels[0].copy_from_slice(&cur_levels[level]);
            min_into(&mut next_levels[0], &self.oracle.rows[i]);
            self.selection.push(i);
            self.evaluate(level + 1)?;
            self.dfs(i + 1, level + 1, spent + price)?;
            self.selection.pop();
        }
        // Exclude candidate i.
        self.dfs(i + 1, level, spent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_exact_agrees_with_optimized_exact() {
        let spec = GameSpec::uniform(7, 2);
        let options = BestResponseOptions::default();
        for seed in 0..5 {
            let cfg = Configuration::random(&spec, seed);
            for u in NodeId::all(7) {
                let frozen = exact(&spec, &cfg, u, &options).unwrap();
                let optimized = crate::best_response::exact(&spec, &cfg, u, &options).unwrap();
                assert!(
                    frozen.same_decision(&optimized),
                    "seed {seed} node {u}: {frozen:?} vs {optimized:?}"
                );
                assert!(
                    optimized.evaluations <= frozen.evaluations,
                    "the pruned search must never work harder than the reference"
                );
            }
        }
    }

    #[test]
    fn reference_costs_agree_with_evaluator() {
        let spec = GameSpec::builder(6)
            .default_budget(2)
            .weight(0, 3, 4)
            .link_length(1, 2, 3)
            .build()
            .unwrap();
        let cfg = Configuration::random(&spec, 11);
        let mut eval = crate::Evaluator::new(&spec);
        assert_eq!(node_costs(&spec, &cfg), eval.node_costs(&cfg));
        assert_eq!(social_cost(&spec, &cfg), eval.social_cost(&cfg));
    }
}

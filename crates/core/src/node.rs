//! Node identifiers.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a player/node in a BBC game.
///
/// A thin newtype over a dense `0..n` index. Keeping it distinct from plain
/// `usize` prevents mixing node ids with counts, costs, or subset indices in
/// the best-response machinery.
///
/// # Examples
///
/// ```
/// use bbc_core::NodeId;
///
/// let v = NodeId::new(3);
/// assert_eq!(v.index(), 3);
/// assert_eq!(v.to_string(), "v3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds `u32::MAX` (games that large are far beyond
    /// anything this library evaluates).
    #[inline]
    pub fn new(index: usize) -> Self {
        assert!(index <= u32::MAX as usize, "node index {index} too large");
        Self(index as u32)
    }

    /// The dense index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Const-friendly constructor for node ids known at compile time (e.g.
    /// the named gadget nodes in `bbc-constructions`).
    pub const fn from_const(index: u32) -> Self {
        Self(index)
    }

    /// Iterator over the first `n` node ids, `v0..vn`.
    pub fn all(n: usize) -> impl Iterator<Item = NodeId> {
        (0..n).map(NodeId::new)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<NodeId> for usize {
    fn from(v: NodeId) -> usize {
        v.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_index() {
        assert_eq!(NodeId::new(7).index(), 7);
        assert_eq!(usize::from(NodeId::new(7)), 7);
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
        let all: Vec<_> = NodeId::all(3).collect();
        assert_eq!(all, vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)]);
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(format!("{}", NodeId::new(5)), "v5");
        assert_eq!(format!("{:?}", NodeId::new(5)), "v5");
    }
}

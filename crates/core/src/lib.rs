//! Bounded Budget Connection (BBC) games — the core model.
//!
//! This crate implements the game of Laoutaris, Poplawski, Rajaraman,
//! Sundaram and Teng, *"Bounded Budget Connection (BBC) Games or How to make
//! friends and influence people, on a budget"* (PODC 2008): `n` players each
//! buy a set of outgoing links under a budget; a player's cost is the
//! preference-weighted sum (or max) of its shortest-path distances to
//! everyone else, with a penalty `M` per unreachable node.
//!
//! The public surface mirrors the paper's concepts:
//!
//! * [`GameSpec`] — the tuple `⟨V, w, c, ℓ, b⟩` plus penalty and cost model;
//! * [`Configuration`] — a joint strategy profile `S`, materializable as the
//!   network `G(S)`;
//! * [`Evaluator`] — node and social costs;
//! * [`DistanceEngine`] — the shared CSR shortest-path substrate every
//!   consumer above sits on: patched in place per move, with memoized
//!   deviation rows and best-response outcomes (see [`engine`] for the
//!   cache-invalidation rules);
//! * [`best_response`] — exact single-node best response via the deviation
//!   oracle (one shortest-path run per candidate target);
//! * [`reference`](mod@reference) — frozen pre-refactor implementations, the executable
//!   spec the engine is differentially tested and benchmarked against;
//! * [`StabilityChecker`] — pure-Nash-equilibrium decision with
//!   [`Deviation`] witnesses;
//! * [`Walk`] — best-response dynamics with cycle detection and
//!   connectivity tracking (§4.3);
//! * [`enumerate`] — exhaustive equilibrium scans over restricted profile
//!   spaces (the machinery behind the gadget no-equilibrium experiments).
//!
//! # Examples
//!
//! ```
//! use bbc_core::{Configuration, GameSpec, StabilityChecker, Walk, WalkOutcome};
//!
//! // Run round-robin best response on a (8,2)-uniform game from an empty
//! // network, then confirm the result is a pure Nash equilibrium.
//! let spec = GameSpec::uniform(8, 2);
//! let mut walk = Walk::new(&spec, Configuration::empty(8));
//! let outcome = walk.run(100_000)?;
//! assert!(matches!(outcome, WalkOutcome::Equilibrium { .. }));
//! assert!(StabilityChecker::new(&spec).is_stable(walk.config())?);
//! # Ok::<(), bbc_core::Error>(())
//! ```

#![forbid(unsafe_code)]

pub mod best_response;
pub mod churn;
pub mod config;
pub mod det;
pub mod dynamics;
pub mod engine;
pub mod enumerate;
pub mod error;
pub mod eval;
pub mod landmark;
pub mod node;
pub mod reference;
pub mod spec;
pub mod stability;

pub use best_response::{BestResponseOptions, BestResponseOutcome, DeviationOracle};
pub use churn::{ChurnConfig, ChurnEvent, ChurnReport, ChurnSim};
pub use config::Configuration;
pub use dynamics::{MoveRecord, Scheduler, Walk, WalkOutcome, WalkStats};
pub use engine::{DistanceEngine, EngineStats, RowTier};
pub use enumerate::{EnumerationResult, ProfileSpace};
pub use error::{Error, Result};
pub use eval::Evaluator;
pub use landmark::{best_response_landmark, LandmarkOracle, LandmarkPolicy};
pub use node::NodeId;
pub use spec::{CostModel, GameSpec, GameSpecBuilder};
pub use stability::{Deviation, StabilityChecker, StabilityReport};

//! Pure Nash equilibrium (stability) checking.
//!
//! A configuration is *stable* (§2) when no node can strictly lower its cost
//! by re-buying its links, everyone else held fixed. [`StabilityChecker`]
//! decides this exactly via the per-node best-response search, returning
//! concrete [`Deviation`] witnesses when the answer is "unstable".

use serde::{Deserialize, Serialize};

use crate::{
    best_response::{self, BestResponseOptions, DeviationOracle},
    Configuration, DistanceEngine, GameSpec, NodeId, Result,
};

/// A profitable unilateral deviation: proof that a configuration is not a
/// pure Nash equilibrium.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Deviation {
    /// The node that benefits from switching.
    pub node: NodeId,
    /// Its cost under the current configuration.
    pub current_cost: u64,
    /// Its cost after switching to [`Deviation::strategy`].
    pub improved_cost: u64,
    /// The cheaper strategy (not necessarily the node's optimum when the
    /// checker runs in first-improvement mode).
    pub strategy: Vec<NodeId>,
}

impl Deviation {
    /// Cost saved by deviating.
    pub fn gain(&self) -> u64 {
        self.current_cost - self.improved_cost
    }
}

/// Outcome of a stability check.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct StabilityReport {
    /// `true` iff the configuration is a pure Nash equilibrium.
    pub stable: bool,
    /// Witnessing deviations. Empty when stable; contains the first witness
    /// found, or one per unstable node when the checker collects all.
    pub deviations: Vec<Deviation>,
    /// Total strategy evaluations spent across nodes.
    pub evaluations: u64,
}

/// Exact stability checker for one game.
///
/// # Examples
///
/// ```
/// use bbc_core::{Configuration, GameSpec, NodeId, StabilityChecker};
///
/// // A directed cycle is the canonical stable (n,1)-uniform graph.
/// let spec = GameSpec::uniform(5, 1);
/// let ring = Configuration::from_strategies(&spec, (0..5).map(|i| {
///     vec![NodeId::new((i + 1) % 5)]
/// }).collect())?;
/// assert!(StabilityChecker::new(&spec).is_stable(&ring)?);
/// # Ok::<(), bbc_core::Error>(())
/// ```
#[derive(Clone, Debug)]
pub struct StabilityChecker<'a> {
    spec: &'a GameSpec,
    options: BestResponseOptions,
    collect_all: bool,
}

impl<'a> StabilityChecker<'a> {
    /// Creates a checker with default search options: stop at the first
    /// unstable node, report one witness.
    pub fn new(spec: &'a GameSpec) -> Self {
        Self {
            spec,
            options: BestResponseOptions {
                stop_at_first_improvement: true,
                ..Default::default()
            },
            collect_all: false,
        }
    }

    /// Overrides the best-response search options. Note the checker always
    /// forces `stop_at_first_improvement` — a witness is a witness.
    pub fn with_options(mut self, options: BestResponseOptions) -> Self {
        self.options = BestResponseOptions {
            stop_at_first_improvement: true,
            ..options
        };
        self
    }

    /// Collect one deviation per unstable node instead of stopping at the
    /// first.
    pub fn collect_all_deviations(mut self, yes: bool) -> Self {
        self.collect_all = yes;
        self
    }

    /// Checks whether `config` is a pure Nash equilibrium.
    ///
    /// Builds a fresh [`DistanceEngine`] for the check; callers scanning
    /// many related configurations should hold an engine and use
    /// [`StabilityChecker::check_with_engine`] so distance rows carry over.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::Error::SearchBudgetExceeded`] if some node's
    /// strategy space is too large for the configured limit.
    pub fn check(&self, config: &Configuration) -> Result<StabilityReport> {
        let mut engine = DistanceEngine::new(self.spec, config.clone());
        self.check_with_engine(&mut engine)
    }

    /// Checks the configuration bound to `engine`, reusing its caches.
    ///
    /// Sync the engine first ([`DistanceEngine::sync_to`]) if it tracks a
    /// different configuration than the one to check.
    ///
    /// # Panics
    ///
    /// Panics if `engine` serves a different game than this checker — the
    /// report would silently describe the wrong game otherwise.
    ///
    /// # Errors
    ///
    /// See [`StabilityChecker::check`].
    pub fn check_with_engine(&self, engine: &mut DistanceEngine<'_>) -> Result<StabilityReport> {
        assert!(
            std::ptr::eq(engine.spec(), self.spec) || engine.spec() == self.spec,
            "engine is bound to a different game than this checker"
        );
        let mut deviations = Vec::new();
        let mut evaluations = 0;
        for u in NodeId::all(self.spec.node_count()) {
            let out = engine.best_response(u, &self.options)?;
            if out.improves() {
                evaluations += out.evaluations;
                deviations.push(Deviation {
                    node: u,
                    current_cost: out.current_cost,
                    improved_cost: out.best_cost,
                    strategy: out.best_strategy,
                });
                if !self.collect_all {
                    break;
                }
            }
        }
        Ok(StabilityReport {
            stable: deviations.is_empty(),
            deviations,
            evaluations,
        })
    }

    /// Checks `config` with the per-node deviation rows filled across
    /// `threads` OS threads before the (sequential, deterministic) verdict
    /// scan. Byte-identical to [`StabilityChecker::check`] for every thread
    /// count — parallelism only changes wall-clock, never the report.
    ///
    /// With `collect_all` off the check stops at the first witness, so
    /// prefilling pays off most on configurations that are actually stable
    /// (every row is needed anyway) — exactly the expensive case in
    /// equilibrium scans.
    ///
    /// # Errors
    ///
    /// See [`StabilityChecker::check`].
    pub fn check_parallel(
        &self,
        config: &Configuration,
        threads: usize,
    ) -> Result<StabilityReport> {
        let mut engine = DistanceEngine::new(self.spec, config.clone());
        let nodes: Vec<NodeId> = NodeId::all(self.spec.node_count()).collect();
        engine.prefill_oracle_rows(&nodes, threads);
        self.check_with_engine(&mut engine)
    }

    /// `true` iff `config` is a pure Nash equilibrium.
    ///
    /// # Errors
    ///
    /// See [`StabilityChecker::check`].
    pub fn is_stable(&self, config: &Configuration) -> Result<bool> {
        Ok(self.check(config)?.stable)
    }

    /// `true` iff the configuration bound to `engine` is a pure Nash
    /// equilibrium (cache-reusing variant of [`StabilityChecker::is_stable`]).
    ///
    /// # Errors
    ///
    /// See [`StabilityChecker::check`].
    pub fn is_stable_with_engine(&self, engine: &mut DistanceEngine<'_>) -> Result<bool> {
        Ok(self.check_with_engine(engine)?.stable)
    }

    /// Checks a single node; returns a deviation witness plus the number of
    /// evaluations spent, or `None` if the node is best-responding.
    ///
    /// # Errors
    ///
    /// See [`StabilityChecker::check`].
    pub fn check_node(
        &self,
        config: &Configuration,
        u: NodeId,
    ) -> Result<Option<(Deviation, u64)>> {
        let out = best_response::exact(self.spec, config, u, &self.options)?;
        if out.improves() {
            Ok(Some((
                Deviation {
                    node: u,
                    current_cost: out.current_cost,
                    improved_cost: out.best_cost,
                    strategy: out.best_strategy,
                },
                out.evaluations,
            )))
        } else {
            Ok(None)
        }
    }

    /// Cheap falsifier: looks for a deviation with the greedy heuristic
    /// only. `Some` proves instability; `None` proves nothing.
    ///
    /// Use on instances where exact per-node search is out of reach
    /// (large `k`); every use in this workspace is labelled as heuristic.
    pub fn heuristic_deviation(&self, config: &Configuration) -> Option<Deviation> {
        for u in NodeId::all(self.spec.node_count()) {
            let oracle = DeviationOracle::build(self.spec, config, u);
            let out = best_response::greedy_with_oracle(&oracle, config);
            if out.improves() {
                return Some(Deviation {
                    node: u,
                    current_cost: out.current_cost,
                    improved_cost: out.best_cost,
                    strategy: out.best_strategy,
                });
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn ring(spec: &GameSpec, n: usize) -> Configuration {
        Configuration::from_strategies(spec, (0..n).map(|i| vec![v((i + 1) % n)]).collect())
            .unwrap()
    }

    #[test]
    fn directed_cycle_is_stable_for_k1() {
        // Paper §4.2: "the simple directed cycle ... is stable" (k = 1).
        for n in 2..8 {
            let spec = GameSpec::uniform(n, 1);
            assert!(
                StabilityChecker::new(&spec)
                    .is_stable(&ring(&spec, n))
                    .unwrap(),
                "cycle on {n} nodes"
            );
        }
    }

    #[test]
    fn empty_configuration_is_unstable_when_linking_helps() {
        let spec = GameSpec::uniform(4, 1);
        let report = StabilityChecker::new(&spec)
            .check(&Configuration::empty(4))
            .unwrap();
        assert!(!report.stable);
        let dev = &report.deviations[0];
        assert!(dev.gain() > 0);
        assert_eq!(dev.strategy.len(), 1);
    }

    #[test]
    fn empty_configuration_is_stable_with_zero_budgets() {
        let spec = GameSpec::builder(4).default_budget(0).build().unwrap();
        assert!(StabilityChecker::new(&spec)
            .is_stable(&Configuration::empty(4))
            .unwrap());
    }

    #[test]
    fn collect_all_reports_every_unstable_node() {
        let spec = GameSpec::uniform(4, 1);
        let report = StabilityChecker::new(&spec)
            .collect_all_deviations(true)
            .check(&Configuration::empty(4))
            .unwrap();
        assert_eq!(
            report.deviations.len(),
            4,
            "every node is disconnected and can improve"
        );
    }

    #[test]
    fn deviation_witness_is_verifiable() {
        let spec = GameSpec::uniform(5, 2);
        let cfg = Configuration::random(&spec, 11);
        let report = StabilityChecker::new(&spec)
            .collect_all_deviations(true)
            .check(&cfg)
            .unwrap();
        let mut eval = crate::Evaluator::new(&spec);
        for dev in &report.deviations {
            let mut moved = cfg.clone();
            moved
                .set_strategy(&spec, dev.node, dev.strategy.clone())
                .unwrap();
            assert_eq!(eval.node_cost(&moved, dev.node), dev.improved_cost);
            assert_eq!(eval.node_cost(&cfg, dev.node), dev.current_cost);
            assert!(dev.improved_cost < dev.current_cost);
        }
    }

    #[test]
    fn heuristic_deviation_agrees_with_exact_on_k1() {
        let spec = GameSpec::uniform(6, 1);
        for seed in 0..10 {
            let cfg = Configuration::random(&spec, seed);
            let checker = StabilityChecker::new(&spec);
            let exact_stable = checker.is_stable(&cfg).unwrap();
            let heuristic = checker.heuristic_deviation(&cfg);
            if heuristic.is_some() {
                assert!(!exact_stable, "heuristic witness must imply instability");
            }
            if !exact_stable {
                // k=1 greedy+swap is exhaustive, so it must find a witness.
                assert!(heuristic.is_some(), "seed {seed}");
            }
        }
    }

    #[test]
    fn parallel_check_matches_sequential_for_any_thread_count() {
        let spec = GameSpec::uniform(7, 2);
        for seed in 0..5 {
            let cfg = Configuration::random(&spec, seed);
            for collect_all in [false, true] {
                let checker = StabilityChecker::new(&spec).collect_all_deviations(collect_all);
                let sequential = checker.check(&cfg).unwrap();
                for threads in [1usize, 2, 5] {
                    assert_eq!(
                        checker.check_parallel(&cfg, threads).unwrap(),
                        sequential,
                        "seed {seed} collect_all {collect_all} threads {threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn engine_reuse_across_checks_is_sound() {
        let spec = GameSpec::uniform(6, 1);
        let checker = StabilityChecker::new(&spec);
        let mut engine = crate::DistanceEngine::new(&spec, Configuration::empty(6));
        for seed in 0..8 {
            let cfg = Configuration::random(&spec, seed);
            engine.sync_to(&cfg);
            assert_eq!(
                checker.is_stable_with_engine(&mut engine).unwrap(),
                checker.is_stable(&cfg).unwrap(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn two_node_mutual_link_is_stable() {
        let spec = GameSpec::uniform(2, 1);
        let cfg = Configuration::from_strategies(&spec, vec![vec![v(1)], vec![v(0)]]).unwrap();
        assert!(StabilityChecker::new(&spec).is_stable(&cfg).unwrap());
    }
}

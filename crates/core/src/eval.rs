//! Cost evaluation: from a configuration to per-node and social costs.
//!
//! The paper defines node `u`'s (dis)utility in `G(S)` as
//! `Σ_v w(u,v)·d(u,v)` with `d(u,v) = M` when `v` is unreachable (§2), and
//! the max-variant `max_v w(u,v)·d(u,v)` (§5). [`Evaluator`] computes both,
//! dispatching to BFS or Dijkstra depending on whether the game has unit
//! lengths.

use bbc_graph::{BfsBuffer, BitSet, DiGraph, DijkstraBuffer, UNREACHABLE};

use crate::{Configuration, CostModel, DistanceEngine, GameSpec, NodeId};

/// Evaluates node costs and social cost for configurations of one game.
///
/// Backed by a [`DistanceEngine`]: consecutive evaluations of similar
/// configurations (a dynamics trace, a harvest of walk endpoints) diff
/// against the previous one and only recompute the distance rows a changed
/// strategy could have affected. Create once and reuse across evaluations of
/// the same game.
///
/// # Examples
///
/// ```
/// use bbc_core::{Configuration, Evaluator, GameSpec, NodeId};
///
/// // Directed 3-cycle in a (3,1)-uniform game: each node sees distances 1,2.
/// let spec = GameSpec::uniform(3, 1);
/// let cfg = Configuration::from_strategies(&spec, vec![
///     vec![NodeId::new(1)], vec![NodeId::new(2)], vec![NodeId::new(0)],
/// ])?;
/// let mut eval = Evaluator::new(&spec);
/// assert_eq!(eval.node_costs(&cfg), vec![3, 3, 3]);
/// assert_eq!(eval.social_cost(&cfg), 9);
/// # Ok::<(), bbc_core::Error>(())
/// ```
#[derive(Debug)]
pub struct Evaluator<'a> {
    spec: &'a GameSpec,
    engine: DistanceEngine<'a>,
    bfs: BfsBuffer,
    dijkstra: DijkstraBuffer,
}

impl<'a> Evaluator<'a> {
    /// Creates an evaluator for `spec`.
    pub fn new(spec: &'a GameSpec) -> Self {
        let n = spec.node_count();
        Self {
            spec,
            engine: DistanceEngine::new(spec, Configuration::empty(n)),
            bfs: BfsBuffer::new(n),
            dijkstra: DijkstraBuffer::new(n),
        }
    }

    /// The game this evaluator measures (decoupled from the `&self` borrow,
    /// so callers can read spec parameters and evaluate in one expression).
    pub fn spec(&self) -> &'a GameSpec {
        self.spec
    }

    /// Shortest-path distances from `u` in the materialized graph.
    ///
    /// Prefer the batched [`Evaluator::node_costs`] when all nodes are
    /// needed; this method still avoids re-allocating traversal state.
    pub fn distances_from(&mut self, graph: &DiGraph, u: NodeId) -> Vec<u64> {
        if self.spec.has_unit_lengths() {
            self.bfs.run(graph, u.index());
            self.bfs.distances().to_vec()
        } else {
            self.dijkstra.run(graph, u.index());
            self.dijkstra.distances().to_vec()
        }
    }

    /// Cost of node `u` under `config`.
    pub fn node_cost(&mut self, config: &Configuration, u: NodeId) -> u64 {
        self.engine.sync_to(config);
        self.engine.node_cost(u)
    }

    /// Cost of node `u` given an already-materialized graph of the
    /// configuration.
    ///
    /// This is the engine-free path for callers that hold a raw
    /// [`DiGraph`] rather than a [`Configuration`]; it cannot cache.
    pub fn node_cost_in_graph(&mut self, graph: &DiGraph, u: NodeId) -> u64 {
        if self.spec.has_unit_lengths() {
            self.bfs.run(graph, u.index());
            cost_from_distances(self.spec, u, self.bfs.distances())
        } else {
            self.dijkstra.run(graph, u.index());
            cost_from_distances(self.spec, u, self.dijkstra.distances())
        }
    }

    /// Costs of every node under `config` (cached rows are reused; at most
    /// one shortest-path run per node).
    pub fn node_costs(&mut self, config: &Configuration) -> Vec<u64> {
        self.engine.sync_to(config);
        self.engine.node_costs()
    }

    /// Social cost: the sum of all node costs. (The paper's "total social
    /// cost"; the social *utility* is its negation.)
    pub fn social_cost(&mut self, config: &Configuration) -> u64 {
        self.engine.sync_to(config);
        self.engine.social_cost()
    }
}

/// Aggregates a distance vector into `u`'s cost under the spec's cost model,
/// substituting the disconnection penalty for unreachable nodes.
///
/// Exposed for the best-response machinery, which produces distance rows
/// without a full `Evaluator`.
pub fn cost_from_distances(spec: &GameSpec, u: NodeId, dist: &[u64]) -> u64 {
    debug_assert_eq!(dist.len(), spec.node_count());
    let m = spec.penalty();
    match spec.cost_model() {
        CostModel::SumDistance => {
            let mut total = 0u64;
            for v in NodeId::all(spec.node_count()) {
                if v == u {
                    continue;
                }
                let w = spec.weight(u, v);
                if w == 0 {
                    continue;
                }
                let d = dist[v.index()];
                total += w * if d == UNREACHABLE { m } else { d };
            }
            total
        }
        CostModel::MaxDistance => {
            let mut worst = 0u64;
            for v in NodeId::all(spec.node_count()) {
                if v == u {
                    continue;
                }
                let w = spec.weight(u, v);
                if w == 0 {
                    continue;
                }
                let d = dist[v.index()];
                worst = worst.max(w * if d == UNREACHABLE { m } else { d });
            }
            worst
        }
    }
}

/// [`cost_from_distances`] restricted to a live-membership mask: only live
/// targets contribute distance (or penalty) terms, so a departed peer is
/// neither a destination nor a source of disconnection penalties.
///
/// This is the aggregation rule of the churn runtime
/// ([`crate::DistanceEngine::remove_node`]); with every node live it reduces
/// to [`cost_from_distances`].
pub fn cost_from_distances_masked(spec: &GameSpec, u: NodeId, dist: &[u64], live: &BitSet) -> u64 {
    debug_assert_eq!(dist.len(), spec.node_count());
    let m = spec.penalty();
    let mut total = 0u64;
    let mut worst = 0u64;
    for v in live.iter().map(NodeId::new) {
        if v == u {
            continue;
        }
        let w = spec.weight(u, v);
        if w == 0 {
            continue;
        }
        let d = dist[v.index()];
        let term = w * if d == UNREACHABLE { m } else { d };
        total += term;
        worst = worst.max(term);
    }
    match spec.cost_model() {
        CostModel::SumDistance => total,
        CostModel::MaxDistance => worst,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Configuration;

    fn v(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn cycle(spec: &GameSpec, n: usize) -> Configuration {
        Configuration::from_strategies(spec, (0..n).map(|i| vec![v((i + 1) % n)]).collect())
            .unwrap()
    }

    #[test]
    fn directed_cycle_costs() {
        let n = 5;
        let spec = GameSpec::uniform(n, 1);
        let cfg = cycle(&spec, n);
        let mut eval = Evaluator::new(&spec);
        // Each node sees distances 1..n-1: sum = n(n-1)/2 = 10.
        assert_eq!(eval.node_costs(&cfg), vec![10; n]);
        assert_eq!(eval.social_cost(&cfg), 50);
    }

    #[test]
    fn disconnection_charges_penalty() {
        let spec = GameSpec::uniform(3, 1);
        let mut cfg = Configuration::empty(3);
        cfg.set_strategy(&spec, v(0), vec![v(1)]).unwrap();
        let mut eval = Evaluator::new(&spec);
        // Node 0 reaches 1 at distance 1, node 2 never: cost 1 + M.
        assert_eq!(eval.node_cost(&cfg, v(0)), 1 + spec.penalty());
        // Node 2 reaches nobody: 2M.
        assert_eq!(eval.node_cost(&cfg, v(2)), 2 * spec.penalty());
    }

    #[test]
    fn weights_scale_distances() {
        let spec = GameSpec::builder(3)
            .default_budget(2)
            .weight(0, 1, 10)
            .weight(0, 2, 3)
            .build()
            .unwrap();
        let cfg =
            Configuration::from_strategies(&spec, vec![vec![v(1)], vec![v(2)], vec![]]).unwrap();
        let mut eval = Evaluator::new(&spec);
        // d(0,1)=1 (w 10), d(0,2)=2 (w 3): 10 + 6 = 16.
        assert_eq!(eval.node_cost(&cfg, v(0)), 16);
    }

    #[test]
    fn zero_weight_targets_do_not_contribute() {
        let spec = GameSpec::builder(3).weight(0, 2, 0).build().unwrap();
        let mut cfg = Configuration::empty(3);
        cfg.set_strategy(&spec, v(0), vec![v(1)]).unwrap();
        let mut eval = Evaluator::new(&spec);
        // Node 2 unreachable but has weight 0: only d(0,1)=1 counts.
        assert_eq!(eval.node_cost(&cfg, v(0)), 1);
    }

    #[test]
    fn max_model_takes_weighted_maximum() {
        let spec = GameSpec::uniform(4, 1).with_cost_model(CostModel::MaxDistance);
        let cfg = cycle(&spec, 4);
        let mut eval = Evaluator::new(&spec);
        assert_eq!(
            eval.node_costs(&cfg),
            vec![3; 4],
            "eccentricity of a 4-cycle"
        );
    }

    #[test]
    fn max_model_weights_interact_with_distance() {
        let spec = GameSpec::builder(3)
            .default_budget(2)
            .weight(0, 1, 10) // near but heavily weighted
            .weight(0, 2, 1)
            .cost_model(CostModel::MaxDistance)
            .build()
            .unwrap();
        let cfg =
            Configuration::from_strategies(&spec, vec![vec![v(1)], vec![v(2)], vec![]]).unwrap();
        let mut eval = Evaluator::new(&spec);
        // max(10·1, 1·2) = 10.
        assert_eq!(eval.node_cost(&cfg, v(0)), 10);
    }

    #[test]
    fn weighted_lengths_use_dijkstra() {
        let spec = GameSpec::builder(3)
            .default_budget(2)
            .link_length(0, 2, 10)
            .build()
            .unwrap();
        let cfg = Configuration::from_strategies(&spec, vec![vec![v(1), v(2)], vec![v(2)], vec![]])
            .unwrap();
        let mut eval = Evaluator::new(&spec);
        // d(0,2) = min(10 direct, 1+1 via 1) = 2; d(0,1) = 1.
        assert_eq!(eval.node_cost(&cfg, v(0)), 3);
    }

    #[test]
    fn single_node_game_has_zero_cost() {
        let spec = GameSpec::uniform(1, 1);
        let cfg = Configuration::empty(1);
        let mut eval = Evaluator::new(&spec);
        assert_eq!(eval.node_cost(&cfg, v(0)), 0);
        assert_eq!(eval.social_cost(&cfg), 0);
    }
}
